//! Ablation study of the reproduction's design choices:
//!
//! 1. **Register reuse** (Section 3.2): when the last use has already
//!    committed, the mechanisms may either release-and-reallocate or keep the
//!    mapping and reuse the register.  Reuse avoids touching the free list
//!    and is what the paper recommends.
//! 2. **Speculation depth**: the number of unverified branches supported
//!    bounds both the checkpoint stack and the Release Queue; shrinking it
//!    saves hardware but stalls the front end earlier.
//! 3. **Conditional releases** (the Release Queue itself): the extended
//!    mechanism versus the basic mechanism's fallback to conventional release
//!    under speculation — this isolates the contribution of Section 4.
//!
//! Each variant plans its points with an explicit [`MachineConfig`] through
//! the shared engine, so the planner dedups the unchanged baseline variants
//! against other experiments (the plain `conventional`/`basic`/`extended`
//! rows at 48 registers are exactly Figure 10's points) and the variants run
//! in parallel like any other sweep.

use crate::config::ExperimentOptions;
use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::metrics::harmonic_mean;
use crate::report::{fmt, fmt_pct, NamedTable, Report, TextTable};
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::WorkloadClass;
use serde::Serialize;

/// Register-file size used by the ablation (tight enough for every knob to
/// matter).
pub const ABLATION_REGISTERS: usize = 48;

/// One ablation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Variant {
    /// Human-readable name.
    pub name: &'static str,
    /// Release policy.
    pub policy: ReleasePolicy,
    /// Whether the reuse optimisation is enabled.
    pub reuse: bool,
    /// Maximum unverified branches (checkpoints / Release Queue depth).
    pub max_pending_branches: usize,
}

/// The variants examined.
pub const VARIANTS: [Variant; 6] = [
    Variant {
        name: "conventional",
        policy: ReleasePolicy::Conventional,
        reuse: true,
        max_pending_branches: 20,
    },
    Variant {
        name: "basic (no reuse)",
        policy: ReleasePolicy::Basic,
        reuse: false,
        max_pending_branches: 20,
    },
    Variant {
        name: "basic",
        policy: ReleasePolicy::Basic,
        reuse: true,
        max_pending_branches: 20,
    },
    Variant {
        name: "extended (no reuse)",
        policy: ReleasePolicy::Extended,
        reuse: false,
        max_pending_branches: 20,
    },
    Variant {
        name: "extended (4 branches)",
        policy: ReleasePolicy::Extended,
        reuse: true,
        max_pending_branches: 4,
    },
    Variant {
        name: "extended",
        policy: ReleasePolicy::Extended,
        reuse: true,
        max_pending_branches: 20,
    },
];

/// Harmonic-mean IPC of each group under each variant.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    /// (variant, int hmean IPC, fp hmean IPC) triples in [`VARIANTS`] order.
    pub rows: Vec<(Variant, f64, f64)>,
}

/// The planned points of one variant (suite order).
fn variant_points(ctx: &PlanContext, variant: Variant) -> Vec<PlannedPoint> {
    ctx.workloads()
        .iter()
        .map(|workload| {
            let mut config = ctx.machine(variant.policy, ABLATION_REGISTERS, ABLATION_REGISTERS);
            config.rename.reuse_on_committed_lu = variant.reuse;
            config.rename.max_pending_branches = variant.max_pending_branches;
            let point = crate::runner::RunPoint {
                workload: workload.name(),
                class: workload.class(),
                policy: variant.policy,
                phys_int: ABLATION_REGISTERS,
                phys_fp: ABLATION_REGISTERS,
            };
            ctx.point_with_config(point, config)
        })
        .collect()
}

/// The points the ablation needs: every variant x every workload.
pub fn plan(ctx: &PlanContext) -> Vec<PlannedPoint> {
    VARIANTS
        .into_iter()
        .flat_map(|variant| variant_points(ctx, variant))
        .collect()
}

/// Summarise resolved results into the per-variant harmonic means.
pub fn summarise(ctx: &PlanContext, results: &ResultSet) -> AblationResult {
    let mut rows = Vec::new();
    for variant in VARIANTS {
        let mut int_ipcs = Vec::new();
        let mut fp_ipcs = Vec::new();
        for planned in variant_points(ctx, variant) {
            let stats = results
                .stats(&planned)
                .unwrap_or_else(|| panic!("unresolved ablation point {:?}", planned.point));
            match planned.point.class {
                WorkloadClass::Int => int_ipcs.push(stats.ipc()),
                WorkloadClass::Fp => fp_ipcs.push(stats.ipc()),
            }
        }
        rows.push((variant, harmonic_mean(&int_ipcs), harmonic_mean(&fp_ipcs)));
    }
    AblationResult { rows }
}

/// Run the ablation standalone (engine path, no disk cache).
pub fn run(options: &ExperimentOptions) -> AblationResult {
    let ctx = PlanContext::new(*options, crate::config::Scenario::table2());
    let results = crate::engine::simulate(&ctx, &plan(&ctx));
    summarise(&ctx, &results)
}

/// The ablation table.
pub fn tables(result: &AblationResult) -> Vec<NamedTable> {
    // The speedup baseline is the variant named "conventional" (the first
    // row) — keyed by name, not by a hard-coded policy comparison.
    let baseline = result
        .rows
        .iter()
        .find(|(v, _, _)| v.name == "conventional")
        .map(|&(_, int, fp)| (int, fp))
        .unwrap_or((1.0, 1.0));
    let mut table = TextTable::new([
        "variant",
        "int Hm IPC",
        "fp Hm IPC",
        "int vs conv",
        "fp vs conv",
    ]);
    for &(variant, int_ipc, fp_ipc) in &result.rows {
        table.row([
            variant.name.to_string(),
            fmt(int_ipc, 3),
            fmt(fp_ipc, 3),
            fmt_pct(int_ipc / baseline.0 - 1.0),
            fmt_pct(fp_ipc / baseline.1 - 1.0),
        ]);
    }
    vec![NamedTable::new("variants", table)]
}

/// Render the ablation table.
pub fn render(result: &AblationResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation — design choices at {ABLATION_REGISTERS}int+{ABLATION_REGISTERS}fp registers\n\n"
    ));
    out.push_str(&tables(result)[0].table.render());
    out.push_str(
        "\nnotes: the reuse optimisation mainly saves free-list traffic; a 4-deep speculation \
         window throttles the branchy integer codes; the Release Queue (extended vs basic) is \
         what recovers the early releases lost to unresolved branches\n",
    );
    out
}

/// The design-choice ablation experiment.
pub struct Ablation;

impl Experiment for Ablation {
    fn id(&self) -> &'static str {
        "ablation"
    }

    fn title(&self) -> &'static str {
        "Ablation — reuse, speculation depth and the Release Queue"
    }

    fn plan(&self, ctx: &PlanContext) -> Vec<PlannedPoint> {
        plan(ctx)
    }

    fn render(&self, ctx: &PlanContext, results: &ResultSet) -> Report {
        let result = summarise(ctx, results);
        Report {
            experiment: self.id(),
            title: self.title(),
            text: render(&result),
            tables: tables(&result),
            data: serde::Serialize::to_value(&result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn ablation_smoke_run_orders_variants_sensibly() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 15_000,
        };
        let result = run(&options);
        assert_eq!(result.rows.len(), VARIANTS.len());
        let ipc_of = |name: &str| {
            result
                .rows
                .iter()
                .find(|(v, _, _)| v.name == name)
                .map(|&(_, int, fp)| (int, fp))
                .unwrap()
        };
        let conv = ipc_of("conventional");
        let extended = ipc_of("extended");
        // The full extended mechanism must not lose to conventional release.
        assert!(extended.0 >= conv.0 * 0.97);
        assert!(extended.1 >= conv.1 * 0.97);
        let text = render(&result);
        assert!(text.contains("extended (4 branches)"));
    }

    #[test]
    fn baseline_variants_share_points_with_fig10() {
        // The unmodified variants are exactly Figure 10's 48-register
        // points, so the planner dedups them across the two experiments.
        let ctx = PlanContext::new(
            ExperimentOptions {
                scale: Scale::Smoke,
                threads: 1,
                max_instructions: 1_000,
            },
            crate::config::Scenario::table2(),
        );
        let ablation_digests: Vec<u64> = plan(&ctx).iter().map(|p| p.digest).collect();
        let fig10_digests: Vec<u64> = crate::fig10::plan(&ctx).iter().map(|p| p.digest).collect();
        let shared = fig10_digests
            .iter()
            .filter(|d| ablation_digests.contains(d))
            .count();
        // conventional + basic + extended at 48 regs: 3 policies x 10 workloads.
        assert_eq!(shared, 30);
    }
}
