//! Figure 9 — access time and energy of the Last-Uses Table compared to the
//! integer and FP register files as the number of registers grows from 40 to
//! 160 (analytic model, no simulation).

use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::report::{fmt, NamedTable, Report, TextTable};
use earlyreg_rfmodel::{access_energy_pj, access_time_ns, RfGeometry};
use serde::{Deserialize, Serialize};

/// One sampled register-file size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig09Row {
    /// Registers in the file.
    pub registers: usize,
    /// Integer-file access time [ns].
    pub int_time_ns: f64,
    /// FP-file access time [ns].
    pub fp_time_ns: f64,
    /// Integer-file energy [pJ].
    pub int_energy_pj: f64,
    /// FP-file energy [pJ].
    pub fp_energy_pj: f64,
}

/// Full Figure 9 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig09Result {
    /// Register-file samples (40–160 in steps of 8).
    pub rows: Vec<Fig09Row>,
    /// LUs Table access time [ns] (paper: 0.98 ns).
    pub lus_time_ns: f64,
    /// LUs Table energy [pJ] (paper: 193.2 pJ).
    pub lus_energy_pj: f64,
}

/// Compute the Figure 9 curves.
pub fn run() -> Fig09Result {
    let rows = (40..=160)
        .step_by(8)
        .map(|registers| Fig09Row {
            registers,
            int_time_ns: access_time_ns(RfGeometry::int_file(registers)),
            fp_time_ns: access_time_ns(RfGeometry::fp_file(registers)),
            int_energy_pj: access_energy_pj(RfGeometry::int_file(registers)),
            fp_energy_pj: access_energy_pj(RfGeometry::fp_file(registers)),
        })
        .collect();
    Fig09Result {
        rows,
        lus_time_ns: access_time_ns(RfGeometry::lus_table()),
        lus_energy_pj: access_energy_pj(RfGeometry::lus_table()),
    }
}

/// The access time / energy table.
pub fn tables(result: &Fig09Result) -> Vec<NamedTable> {
    let mut table = TextTable::new([
        "registers",
        "int time (ns)",
        "fp time (ns)",
        "LUsT time (ns)",
        "int energy (pJ)",
        "fp energy (pJ)",
        "LUsT energy (pJ)",
    ]);
    for row in &result.rows {
        table.row([
            row.registers.to_string(),
            fmt(row.int_time_ns, 3),
            fmt(row.fp_time_ns, 3),
            fmt(result.lus_time_ns, 3),
            fmt(row.int_energy_pj, 0),
            fmt(row.fp_energy_pj, 0),
            fmt(result.lus_energy_pj, 1),
        ]);
    }
    vec![NamedTable::new("access", table)]
}

/// Render both panels of Figure 9.
pub fn render(result: &Fig09Result) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 9 — LUs Table vs register file access time and energy (0.18 um model)\n\n",
    );
    out.push_str(&tables(result)[0].table.render());
    out.push_str(
        "\npaper reference: LUs Table at 0.98 ns / 193.2 pJ, ~26% faster than the smallest \
         integer file and ~20% of the least demanding file's energy\n",
    );
    out
}

/// The Figure 9 experiment (analytic — no simulation points).
pub struct Fig09;

impl Experiment for Fig09 {
    fn id(&self) -> &'static str {
        "fig09"
    }

    fn title(&self) -> &'static str {
        "Figure 9 — LUs Table vs register file access time and energy"
    }

    fn plan(&self, _ctx: &PlanContext) -> Vec<PlannedPoint> {
        Vec::new()
    }

    fn render(&self, _ctx: &PlanContext, _results: &ResultSet) -> Report {
        let result = run();
        Report {
            experiment: self.id(),
            title: self.title(),
            text: render(&result),
            tables: tables(&result),
            data: serde::Serialize::to_value(&result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig09_reproduces_the_anchor_points() {
        let result = run();
        assert_eq!(result.rows.len(), 16);
        assert!((result.lus_time_ns - 0.98).abs() < 0.02);
        assert!((result.lus_energy_pj - 193.2).abs() < 2.0);
        // The LUs Table is below every register-file curve.
        for row in &result.rows {
            assert!(result.lus_time_ns < row.int_time_ns);
            assert!(result.lus_energy_pj < row.int_energy_pj);
            assert!(row.fp_time_ns >= row.int_time_ns);
            assert!(row.fp_energy_pj >= row.int_energy_pj);
        }
        assert!(render(&result).contains("registers"));
    }
}
