//! Static context tables: the paper's Table 1 (commercial processors with
//! merged register files) and Table 3 (benchmarks), plus the Table 2 machine
//! summary printed by the experiment binaries.

use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::report::{NamedTable, Report, TextTable};
use earlyreg_core::ReleasePolicy;
use earlyreg_sim::MachineConfig;
use earlyreg_workloads::registry;

/// The Table 1 data.
pub fn table1() -> TextTable {
    let mut table = TextTable::new([
        "processor",
        "int phys regs",
        "fp phys regs",
        "reorder structure",
    ]);
    table.row([
        "MIPS R10K",
        "64 (7R 3W)",
        "64 (5R 3W)",
        "32-entry Active List",
    ]);
    table.row(["MIPS R12K", "64", "64", "48-entry Active List"]);
    table.row([
        "Alpha 21264",
        "2 x 80 (4R 6W each)",
        "72 (6R 4W)",
        "80-entry In-Flight Window",
    ]);
    table.row(["Intel P4", "128", "128", "126-op Reorder Buffer"]);
    table
}

/// Render the paper's Table 1 (descriptive context only — nothing is
/// simulated from it).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1 — out-of-order processors with merged register files (paper context)\n\n",
    );
    out.push_str(&table1().render());
    out.push_str("\nloose file: P >= L + N (never stalls for registers); tight file: P < L + N\n");
    out
}

/// Render the simulated-machine summary (the paper's Table 2).
pub fn render_table2(phys_int: usize, phys_fp: usize) -> String {
    let cfg = MachineConfig::icpp02(ReleasePolicy::Extended, phys_int, phys_fp);
    let mut table = TextTable::new(["parameter", "value"]);
    table.row([
        "fetch width".to_string(),
        format!(
            "{} (up to {} taken branches)",
            cfg.fetch_width, cfg.max_taken_per_fetch
        ),
    ]);
    table.row([
        "branch predictor".to_string(),
        format!(
            "{}-bit gshare, {} pending branches",
            cfg.predictor.gshare_bits, cfg.rename.max_pending_branches
        ),
    ]);
    table.row([
        "reorder structure".to_string(),
        format!("{} entries", cfg.ros_size),
    ]);
    table.row([
        "load/store queue".to_string(),
        format!("{} entries", cfg.lsq_size),
    ]);
    table.row([
        "functional units".to_string(),
        "8 int ALU, 4 int mul, 6 FP add, 4 FP mul, 4 FP div, 4 ld/st".to_string(),
    ]);
    table.row([
        "L1 I-cache".to_string(),
        "32 KB, 2-way, 32 B lines, 1 cycle".to_string(),
    ]);
    table.row([
        "L1 D-cache".to_string(),
        "32 KB, 2-way, 64 B lines, 1 cycle".to_string(),
    ]);
    table.row([
        "L2".to_string(),
        "1 MB, 2-way, 64 B lines, 12 cycles".to_string(),
    ]);
    table.row([
        "memory".to_string(),
        format!("{} cycles", cfg.memory_latency),
    ]);
    table.row([
        "physical registers".to_string(),
        format!("{phys_int} int + {phys_fp} fp (32 + 32 logical)"),
    ]);
    table.row(["commit width".to_string(), cfg.commit_width.to_string()]);
    format!(
        "Table 2 — simulated processor parameters\n\n{}",
        table.render()
    )
}

/// The Table 3 data.
pub fn table3() -> TextTable {
    let mut table = TextTable::new(["benchmark", "group", "paper input", "paper Minst", "kernel"]);
    for spec in registry::descriptors() {
        table.row([
            spec.id.to_string(),
            match spec.class {
                earlyreg_workloads::WorkloadClass::Int => "int".to_string(),
                earlyreg_workloads::WorkloadClass::Fp => "fp".to_string(),
            },
            spec.paper_input.to_string(),
            if spec.paper {
                spec.paper_minsts.to_string()
            } else {
                "-".to_string()
            },
            spec.description.to_string(),
        ]);
    }
    table
}

/// Render the paper's Table 3 together with this reproduction's substitutes.
pub fn render_table3() -> String {
    let mut out = String::new();
    out.push_str(
        "Table 3 — registered workloads (paper inputs vs this reproduction's kernels)\n\n",
    );
    out.push_str(&table3().render());
    out
}

/// The Table 1 context experiment (no simulation).
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table 1 — commercial processors with merged register files (context)"
    }

    fn plan(&self, _ctx: &PlanContext) -> Vec<PlannedPoint> {
        Vec::new()
    }

    fn render(&self, _ctx: &PlanContext, _results: &ResultSet) -> Report {
        let table = NamedTable::new("processors", table1());
        Report {
            experiment: self.id(),
            title: self.title(),
            text: render_table1(),
            data: table.table.to_value(),
            tables: vec![table],
        }
    }
}

/// The Table 3 context experiment (no simulation).
pub struct Table3;

impl Experiment for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn title(&self) -> &'static str {
        "Table 3 — benchmarks and their synthetic substitutes"
    }

    fn plan(&self, _ctx: &PlanContext) -> Vec<PlannedPoint> {
        Vec::new()
    }

    fn render(&self, _ctx: &PlanContext, _results: &ResultSet) -> Report {
        let table = NamedTable::new("benchmarks", table3());
        Report {
            experiment: self.id(),
            title: self.title(),
            text: render_table3(),
            data: table.table.to_value(),
            tables: vec![table],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_four_processors() {
        let text = render_table1();
        for name in ["MIPS R10K", "MIPS R12K", "Alpha 21264", "Intel P4"] {
            assert!(text.contains(name));
        }
    }

    #[test]
    fn table2_reflects_the_machine_configuration() {
        let text = render_table2(96, 96);
        assert!(text.contains("18-bit gshare"));
        assert!(text.contains("128 entries"));
        assert!(text.contains("96 int + 96 fp"));
    }

    #[test]
    fn table3_lists_every_registered_workload() {
        let text = render_table3();
        for spec in registry::descriptors() {
            assert!(text.contains(spec.id), "missing {}", spec.id);
        }
        assert!(text.contains("472"));
        assert!(text.contains("matmul"));
    }
}
