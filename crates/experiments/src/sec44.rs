//! Section 4.4 — implementation cost of the extended mechanism: the energy
//! balance of shrinking the register files versus adding two LUs Tables, and
//! the storage cost on an Alpha-21264-class machine.

use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::report::{fmt, NamedTable, Report, TextTable};
use earlyreg_rfmodel::storage::{alpha21264_example, lus_table_storage};
use earlyreg_rfmodel::{
    access_energy_pj, energy_balance, EnergyBalance, RfGeometry, StorageEstimate,
};
use serde::{Deserialize, Serialize};

/// Full Section 4.4 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec44Result {
    /// Energy of the conventional 64int + 79fp configuration versus the
    /// early-release 56int + 72fp + 2 LUs Tables configuration.
    pub balance: EnergyBalance,
    /// LUs Table energy [pJ].
    pub lus_energy_pj: f64,
    /// Storage cost of the extended mechanism on the Alpha-21264 example.
    pub storage: StorageEstimate,
    /// Storage of the two LUs Tables in bytes (exact bit count / 8).
    pub lus_storage_bytes: f64,
}

/// Compute the Section 4.4 numbers.
pub fn run() -> Sec44Result {
    Sec44Result {
        balance: energy_balance(64, 79, 56, 72),
        lus_energy_pj: access_energy_pj(RfGeometry::lus_table()),
        storage: alpha21264_example(),
        lus_storage_bytes: lus_table_storage(80, 32, 2) as f64 / 8.0,
    }
}

/// The energy-balance and storage tables.
pub fn tables(result: &Sec44Result) -> Vec<NamedTable> {
    let mut energy = TextTable::new(["configuration", "energy (pJ)"]);
    energy.row([
        "conventional: 64int + 79fp".to_string(),
        fmt(result.balance.conventional_pj, 0),
    ]);
    energy.row([
        "early release: 56int + 72fp + 2 x LUs Table".to_string(),
        fmt(result.balance.early_release_pj, 0),
    ]);
    energy.row([
        "relative difference".to_string(),
        format!("{:+.2}%", result.balance.relative_difference() * 100.0),
    ]);

    let mut storage = TextTable::new(["structure", "bits", "bytes"]);
    storage.row([
        "PRid (3 x ROS x 8b)".to_string(),
        result.storage.prid_bits.to_string(),
        fmt(result.storage.prid_bits as f64 / 8.0, 0),
    ]);
    storage.row([
        "RwC0 (3 x ROS)".to_string(),
        result.storage.rwc0_bits.to_string(),
        fmt(result.storage.rwc0_bits as f64 / 8.0, 0),
    ]);
    storage.row([
        "Release Queue (20 levels)".to_string(),
        result.storage.release_queue_bits.to_string(),
        fmt(result.storage.release_queue_bits as f64 / 8.0, 0),
    ]);
    storage.row([
        "total".to_string(),
        result.storage.total_bits().to_string(),
        format!(
            "{} ({:.2} KB)",
            fmt(result.storage.total_bytes(), 0),
            result.storage.total_kib()
        ),
    ]);
    storage.row([
        "int+fp LUs Tables".to_string(),
        format!("{}", (result.lus_storage_bytes * 8.0) as u64),
        fmt(result.lus_storage_bytes, 0),
    ]);
    vec![
        NamedTable::new("energy", energy),
        NamedTable::new("storage", storage),
    ]
}

/// Render the Section 4.4 report.
pub fn render(result: &Sec44Result) -> String {
    let tables = tables(result);
    let mut out = String::new();
    out.push_str("Section 4.4 — implementation cost of the extended mechanism\n\n");
    out.push_str(&tables[0].table.render());
    out.push_str("paper reference: 3850 pJ vs 3851 pJ (neutral)\n\n");
    out.push_str(&tables[1].table.render());
    out.push_str(
        "paper reference: about 1.22 KB for the extended mechanism plus ~128 B of LUs Tables\n",
    );
    out
}

/// The Section 4.4 experiment (analytic — no simulation points).
pub struct Sec44;

impl Experiment for Sec44 {
    fn id(&self) -> &'static str {
        "sec44"
    }

    fn title(&self) -> &'static str {
        "Section 4.4 — energy balance and storage cost of the extended mechanism"
    }

    fn plan(&self, _ctx: &PlanContext) -> Vec<PlannedPoint> {
        Vec::new()
    }

    fn render(&self, _ctx: &PlanContext, _results: &ResultSet) -> Report {
        let result = run();
        Report {
            experiment: self.id(),
            title: self.title(),
            text: render(&result),
            tables: tables(&result),
            data: serde::Serialize::to_value(&result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec44_matches_paper_anchors() {
        let result = run();
        assert!(result.balance.relative_difference().abs() < 0.02);
        assert!((result.storage.total_kib() - 1.22).abs() < 0.01);
        assert!((result.lus_energy_pj - 193.2).abs() < 2.0);
        let text = render(&result);
        assert!(text.contains("1.22"));
        assert!(text.contains("Release Queue"));
    }
}
