//! Regenerates Figure 3: average number of allocated registers in the Empty,
//! Ready and Idle states under conventional renaming (96int + 96fp).
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run fig03 --no-cache`.
//!
//! Usage: fig03_occupancy [--scale smoke|bench|full] [--threads N]
fn main() {
    earlyreg_experiments::engine::shim_main("fig03");
}
