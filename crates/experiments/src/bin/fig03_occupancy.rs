//! Regenerates Figure 3: average number of allocated registers in the Empty,
//! Ready and Idle states under conventional renaming (96int + 96fp).
//!
//! Usage: fig03_occupancy [--scale smoke|bench|full] [--threads N]
use earlyreg_experiments::{context, fig03, ExperimentOptions};
fn main() {
    let options = match ExperimentOptions::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    print!(
        "{}",
        context::render_table2(fig03::FIG03_REGISTERS, fig03::FIG03_REGISTERS)
    );
    println!();
    let result = fig03::run(&options);
    print!("{}", fig03::render(&result));
}
