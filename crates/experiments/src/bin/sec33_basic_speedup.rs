//! Regenerates the Section 3.3 result: speedup of the basic mechanism alone
//! over conventional release at 64, 48 and 40 registers per class.
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run sec33 --no-cache`.
//!
//! Usage: sec33_basic_speedup [--scale smoke|bench|full] [--threads N]
fn main() {
    earlyreg_experiments::engine::shim_main("sec33");
}
