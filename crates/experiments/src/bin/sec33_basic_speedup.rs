//! Regenerates the Section 3.3 result: speedup of the basic mechanism alone
//! over conventional release at 64, 48 and 40 registers per class.
//!
//! Usage: sec33_basic_speedup [--scale smoke|bench|full] [--threads N]
use earlyreg_experiments::{sec33, ExperimentOptions};
fn main() {
    let options = match ExperimentOptions::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = sec33::run(&options);
    print!("{}", sec33::render(&result));
}
