//! Regenerates Figure 11: harmonic-mean IPC versus register file size
//! (40-160 per class) for the three release policies.
//!
//! Usage: fig11_sweep [--scale smoke|bench|full] [--threads N]
use earlyreg_experiments::{fig11, ExperimentOptions};
fn main() {
    let options = match ExperimentOptions::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = fig11::run(&options);
    print!("{}", fig11::render(&result));
}
