//! Regenerates Figure 11: harmonic-mean IPC versus register file size
//! (40-160 per class) for the three release policies.
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run fig11 --no-cache`.
//!
//! Usage: fig11_sweep [--scale smoke|bench|full] [--threads N]
fn main() {
    earlyreg_experiments::engine::shim_main("fig11");
}
