//! Regenerates Figure 9: access time and energy of the LUs Table and of the
//! integer/FP register files as a function of the number of registers.
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run fig09 --no-cache`.
fn main() {
    earlyreg_experiments::engine::shim_main("fig09");
}
