//! Regenerates Figure 9: access time and energy of the LUs Table and of the
//! integer/FP register files as a function of the number of registers.
use earlyreg_experiments::fig09;
fn main() {
    let result = fig09::run();
    print!("{}", fig09::render(&result));
}
