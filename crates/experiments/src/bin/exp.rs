//! `earlyreg-exp` — the one CLI over the declarative experiment engine.
//!
//! ```text
//! earlyreg-exp list
//! earlyreg-exp run <ids...|all> [--format text|json|csv] [--out DIR]
//!                  [--scale smoke|bench|full] [--jobs N] [--max-instructions N]
//!                  [--scenario FILE] [--cache DIR | --no-cache]
//! ```
//!
//! `run` plans the union of the selected experiments' simulation points,
//! dedups them across experiments, answers what it can from the on-disk
//! point cache, simulates the rest in parallel (each distinct point exactly
//! once) and renders every report through the selected backend.  The final
//! summary line reports the planned / unique / cache-hit / simulated counts.

use earlyreg_experiments::engine::{self, PlanContext};
use earlyreg_experiments::{ExperimentOptions, Format, PointCache, Scenario};
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "\
usage: earlyreg-exp <command>
  list                          list registered experiments, policies and workloads
  run <ids...|all>              run experiments as one shared sweep
      --format text|json|csv    report backend (default text)
      --out DIR                 write reports under DIR (json/csv default out/)
      --scale smoke|bench|full  workload scale (default full)
      --jobs N                  worker threads (default: one per CPU)
      --max-instructions N      committed-instruction budget per point
      --scenario FILE           machine/sweep overrides (key = value lines)
      --cache DIR               point cache directory (default target/exp-cache)
      --no-cache                disable the on-disk point cache
";

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!();
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("run") => run(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
        }
        Some(other) => fail(&format!("unknown command '{other}'")),
    }
}

fn list() {
    let registry = engine::registry();
    let width = registry.iter().map(|e| e.id().len()).max().unwrap_or(0);
    println!("experiments:");
    for experiment in registry {
        println!(
            "  {:<width$}  {}",
            experiment.id(),
            experiment.title(),
            width = width
        );
    }
    // Release policies come from the core registry: anything listed here is
    // accepted by `--scenario` policies lines, the serve API and benches.
    let descriptors = earlyreg_core::registry::descriptors();
    let width = descriptors.iter().map(|d| d.id.len()).max().unwrap_or(0);
    println!("policies:");
    for descriptor in descriptors {
        let paper = if descriptor.paper { " [paper]" } else { "" };
        println!(
            "  {:<width$}  {}{paper}",
            descriptor.id,
            descriptor.title,
            width = width
        );
    }
    // Workloads likewise: anything listed here is accepted by `--scenario`
    // workloads lines, the serve API and benches.
    let descriptors = earlyreg_workloads::registry::descriptors();
    let width = descriptors.iter().map(|d| d.id.len()).max().unwrap_or(0);
    println!("workloads:");
    for descriptor in descriptors {
        let class = match descriptor.class {
            earlyreg_workloads::WorkloadClass::Int => "int",
            earlyreg_workloads::WorkloadClass::Fp => "fp",
        };
        let paper = if descriptor.paper { " [paper]" } else { "" };
        println!(
            "  {:<width$}  [{class}] {}{paper}",
            descriptor.id,
            descriptor.description,
            width = width
        );
    }
}

fn run(args: &[String]) {
    let mut ids: Vec<String> = Vec::new();
    let mut options = ExperimentOptions::default();
    let mut scenario = Scenario::table2();
    let mut format = Format::Text;
    let mut out: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = Some(PathBuf::from("target/exp-cache"));

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--format" => match Format::parse(&value("--format")) {
                Ok(parsed) => format = parsed,
                Err(message) => fail(&message),
            },
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--scale" => match ExperimentOptions::parse_scale(&value("--scale")) {
                Ok(scale) => options.scale = scale,
                Err(message) => fail(&message),
            },
            "--jobs" | "--threads" => match ExperimentOptions::parse_threads(&value("--jobs")) {
                Ok(threads) => options.threads = threads,
                Err(message) => fail(&message),
            },
            "--max-instructions" => {
                match ExperimentOptions::parse_budget(&value("--max-instructions")) {
                    Ok(budget) => options.max_instructions = budget,
                    Err(message) => fail(&message),
                }
            }
            "--scenario" => {
                let path = PathBuf::from(value("--scenario"));
                scenario = Scenario::from_file(&path).unwrap_or_else(|message| fail(&message));
            }
            "--cache" => cache_dir = Some(PathBuf::from(value("--cache"))),
            "--no-cache" => cache_dir = None,
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            flag if flag.starts_with("--") => fail(&format!("unknown flag '{flag}'")),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        fail("run: name at least one experiment id (or 'all')");
    }
    // JSON/CSV reports are files; default a directory so the reports land
    // somewhere useful instead of interleaving on stdout.
    if out.is_none() && format != Format::Text {
        out = Some(PathBuf::from("out"));
    }

    let cache = cache_dir.map(PointCache::new);
    let ctx = PlanContext::new(options, scenario);
    match engine::run_to_files(&ids, &ctx, cache.as_ref(), format, out.as_deref()) {
        Ok(outcome) => {
            if let Some(dir) = &out {
                println!("reports written to {}/", dir.display());
            }
            println!("{}", outcome.summary.line());
        }
        Err(message) => fail(&message),
    }
}
