//! Regenerates the Section 4.4 cost analysis: the register-file energy
//! balance and the storage cost of the extended mechanism.
use earlyreg_experiments::sec44;
fn main() {
    let result = sec44::run();
    print!("{}", sec44::render(&result));
}
