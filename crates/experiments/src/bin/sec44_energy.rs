//! Regenerates the Section 4.4 cost analysis: the register-file energy
//! balance and the storage cost of the extended mechanism.
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run sec44 --no-cache`.
fn main() {
    earlyreg_experiments::engine::shim_main("sec44");
}
