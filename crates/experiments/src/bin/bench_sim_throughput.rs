//! Simulator-throughput benchmark: host-side speed, not simulated IPC.
//!
//! Every experiment in the paper is a sweep of independent cycle-level
//! simulations, so *simulated instructions per host-second* is the lever that
//! decides how many (workload, policy, register-file-size) points a run can
//! afford.  This binary runs a fixed-instruction-budget point per (workload,
//! policy) pair and records the measured throughput in
//! `BENCH_sim_throughput.json`, seeding the performance trajectory of the
//! hot-path work tracked in the README ("Simulator performance").
//!
//! Usage:
//!   bench_sim_throughput [--instructions N] [--workloads swim,gcc]
//!                        [--out BENCH_sim_throughput.json]
//!
//! `--instructions` defaults to 1,000,000 committed instructions; CI's
//! bench-smoke step runs with a tiny budget purely to keep this path
//! compiling and executing.

use earlyreg_core::ReleasePolicy;
use earlyreg_sim::{MachineConfig, RunLimits, Simulator};
use earlyreg_workloads::{workload_with_target_instructions, SPECS};
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    instructions: u64,
    workloads: Vec<String>,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_sim_throughput [--instructions N] [--workloads name,name,...] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        instructions: 1_000_000,
        workloads: vec!["swim".into(), "gcc".into()],
        out: "BENCH_sim_throughput.json".into(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--instructions" => args.instructions = value().parse().unwrap_or_else(|_| usage()),
            "--workloads" => {
                args.workloads = value().split(',').map(str::to_owned).collect();
            }
            "--out" => args.out = value(),
            _ => usage(),
        }
    }
    args
}

struct Measurement {
    workload: String,
    policy: ReleasePolicy,
    committed: u64,
    cycles: u64,
    seconds: f64,
}

impl Measurement {
    /// Simulated (committed) instructions per host-second.
    fn mips(&self) -> f64 {
        if self.seconds > 0.0 {
            self.committed as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Simulated cycles per host-second.
    fn cps(&self) -> f64 {
        if self.seconds > 0.0 {
            self.cycles as f64 / self.seconds
        } else {
            0.0
        }
    }
}

fn main() {
    let args = parse_args();
    // One throughput point per registered policy: new schemes join the
    // benchmark automatically through the registry.
    let policies: Vec<ReleasePolicy> = earlyreg_core::registry::registered().collect();

    let mut measurements = Vec::new();
    for name in &args.workloads {
        // Size the program a little above the budget so the run is limited by
        // `max_instructions`, not by the program halting early.
        let Some(workload) = workload_with_target_instructions(name, args.instructions * 2) else {
            let available: Vec<&str> = SPECS.iter().map(|s| s.name).collect();
            eprintln!(
                "unknown workload '{name}'; available: {}",
                available.join(" ")
            );
            std::process::exit(2);
        };
        for &policy in &policies {
            let config = MachineConfig::icpp02(policy, 80, 80);
            let mut sim = Simulator::new(config, workload.program.clone());
            let start = Instant::now();
            let stats = sim.run(RunLimits::instructions(args.instructions));
            let seconds = start.elapsed().as_secs_f64();
            let m = Measurement {
                workload: name.clone(),
                policy,
                committed: stats.committed,
                cycles: stats.cycles,
                seconds,
            };
            println!(
                "{:<10} {:<12} {:>10} instructions in {:>7.3}s  ->  {:>10.0} sim-instr/s  \
                 ({:>10.0} sim-cycles/s)",
                m.workload,
                policy.label(),
                m.committed,
                m.seconds,
                m.mips(),
                m.cps(),
            );
            measurements.push(m);
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"sim_throughput\",\n  \"unit\": \"simulated instructions per host-second\",\n  \"points\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"policy\": \"{}\", \"instructions\": {}, \"cycles\": {}, \"seconds\": {:.6}, \"sim_instr_per_host_sec\": {:.1}, \"sim_cycles_per_host_sec\": {:.1}}}{}",
            m.workload,
            m.policy.label(),
            m.committed,
            m.cycles,
            m.seconds,
            m.mips(),
            m.cps(),
            if i + 1 < measurements.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);
}
