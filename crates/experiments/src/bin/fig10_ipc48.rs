//! Regenerates Figure 10: per-benchmark IPC for conventional, basic and
//! extended release with a 48int + 48fp register file.
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run fig10 --no-cache`.
//!
//! Usage: fig10_ipc48 [--scale smoke|bench|full] [--threads N]
fn main() {
    earlyreg_experiments::engine::shim_main("fig10");
}
