//! Regenerates Figure 10: per-benchmark IPC for conventional, basic and
//! extended release with a 48int + 48fp register file.
//!
//! Usage: fig10_ipc48 [--scale smoke|bench|full] [--threads N]
use earlyreg_experiments::{context, fig10, ExperimentOptions};
fn main() {
    let options = match ExperimentOptions::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    print!(
        "{}",
        context::render_table2(fig10::FIG10_REGISTERS, fig10::FIG10_REGISTERS)
    );
    println!();
    let result = fig10::run(&options);
    print!("{}", fig10::render(&result));
}
