//! Prints the paper's Table 1 (context: commercial processors with merged
//! register files).  Nothing is simulated.
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run table1 --no-cache`.
fn main() {
    earlyreg_experiments::engine::shim_main("table1");
}
