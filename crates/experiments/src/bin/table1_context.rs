//! Prints the paper's Table 1 (context: commercial processors with merged
//! register files).  Nothing is simulated.
fn main() {
    print!("{}", earlyreg_experiments::context::render_table1());
}
