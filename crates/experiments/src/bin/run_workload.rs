//! Run a single workload under a single configuration and print the full
//! statistics report — the "swiss-army knife" binary for exploring the
//! simulator outside the canned experiments.
//!
//! Usage:
//!   run_workload --workload swim [--policy <registered id, e.g. extended>]
//!                [--int-regs N] [--fp-regs N] [--scale smoke|bench|full]
//!                [--max-instructions N] [--exception-interval N] [--verify]

use earlyreg_core::ReleasePolicy;
use earlyreg_sim::{verify_against_emulator, MachineConfig, RunLimits, Simulator};
use earlyreg_workloads::{workload_by_name, Scale};

struct Args {
    workload: String,
    policy: ReleasePolicy,
    int_regs: usize,
    fp_regs: usize,
    scale: Scale,
    max_instructions: u64,
    exception_interval: Option<u64>,
    verify: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: run_workload --workload NAME [--policy {}] [--int-regs N] \
         [--fp-regs N] [--scale smoke|bench|full] [--max-instructions N] \
         [--exception-interval N] [--verify]",
        earlyreg_core::registry::ids().join("|")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: String::new(),
        policy: ReleasePolicy::Extended,
        int_regs: 64,
        fp_regs: 64,
        scale: Scale::Bench,
        max_instructions: 2_000_000,
        exception_interval: None,
        verify: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" => args.workload = value(),
            "--policy" => {
                args.policy = ReleasePolicy::parse(&value()).unwrap_or_else(|error| {
                    eprintln!("{error}");
                    usage()
                })
            }
            "--int-regs" => args.int_regs = value().parse().unwrap_or_else(|_| usage()),
            "--fp-regs" => args.fp_regs = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => {
                args.scale = match value().as_str() {
                    "smoke" => Scale::Smoke,
                    "bench" => Scale::Bench,
                    "full" => Scale::Full,
                    _ => usage(),
                }
            }
            "--max-instructions" => {
                args.max_instructions = value().parse().unwrap_or_else(|_| usage())
            }
            "--exception-interval" => {
                args.exception_interval = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--verify" => args.verify = true,
            _ => usage(),
        }
    }
    if args.workload.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let workload = match earlyreg_workloads::registry::parse(&args.workload) {
        Ok(descriptor) => {
            workload_by_name(descriptor.id, args.scale).expect("registered ids always instantiate")
        }
        Err(error) => {
            eprintln!("{error}");
            std::process::exit(2);
        }
    };

    let mut config = MachineConfig::icpp02(args.policy, args.int_regs, args.fp_regs);
    config.exceptions.interval = args.exception_interval;
    let mut sim = Simulator::new(config, workload.program.clone());
    let stats = sim.run(RunLimits::instructions(args.max_instructions));

    println!(
        "workload {} ({}) — policy {}, {} int + {} fp physical registers",
        workload.name(),
        workload.spec.description,
        args.policy,
        args.int_regs,
        args.fp_regs
    );
    println!();
    println!("cycles                    {:>12}", stats.cycles);
    println!("committed instructions    {:>12}", stats.committed);
    println!("IPC                       {:>12.3}", stats.ipc());
    println!("halted                    {:>12}", stats.halted);
    println!("committed branches        {:>12}", stats.committed_branches);
    println!(
        "branch mispredictions     {:>12}",
        stats.mispredicted_branches
    );
    println!(
        "prediction accuracy       {:>11.1}%",
        stats.predictor.accuracy() * 100.0
    );
    println!(
        "committed loads / stores  {:>6} / {:<6}",
        stats.committed_loads, stats.committed_stores
    );
    println!(
        "L1D miss ratio            {:>11.1}%",
        stats.memory.l1d.miss_ratio() * 100.0
    );
    println!("exceptions taken          {:>12}", stats.exceptions);
    println!();
    println!(
        "rename stalls (cycles)    free-list {}  ros {}  lsq {}  branches {}",
        stats.rename_stalls.free_list,
        stats.rename_stalls.ros_full,
        stats.rename_stalls.lsq_full,
        stats.rename_stalls.pending_branches
    );
    for (label, class_stats, occ) in [
        ("int", &stats.release.int, &stats.occupancy_int),
        ("fp ", &stats.release.fp, &stats.occupancy_fp),
    ] {
        println!();
        println!(
            "{label} registers: avg empty {:.1}  ready {:.1}  idle {:.1}  (allocated {:.1})",
            occ.avg_empty(),
            occ.avg_ready(),
            occ.avg_idle(),
            occ.avg_allocated()
        );
        println!(
            "{label} releases : conventional {}  at-LU-commit {}  immediate {}  reuse {}  branch-confirm {}  squash {}",
            class_stats.conventional_releases,
            class_stats.early_at_lu_commit,
            class_stats.immediate_at_decode,
            class_stats.reuses,
            class_stats.branch_confirm_releases,
            class_stats.squash_mispredict_frees + class_stats.squash_exception_frees
        );
    }

    if args.verify {
        println!();
        match verify_against_emulator(&sim, &workload.program) {
            outcome if outcome.is_match() => {
                println!("golden-model verification: MATCH ({outcome:?})")
            }
            outcome => {
                println!("golden-model verification FAILED: {outcome:?}");
                std::process::exit(1);
            }
        }
    }
}
