//! Regenerates Table 4: register file sizes at which the extended mechanism
//! matches the IPC of conventional release, and the storage saved.
//!
//! Usage: table4_equal_ipc [--scale smoke|bench|full] [--threads N]
use earlyreg_experiments::{table4, ExperimentOptions};
fn main() {
    let options = match ExperimentOptions::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = table4::run(&options);
    print!("{}", table4::render(&result));
}
