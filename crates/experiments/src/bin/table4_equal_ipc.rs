//! Regenerates Table 4: register file sizes at which the extended mechanism
//! matches the IPC of conventional release, and the storage saved.
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run table4 --no-cache`.
//!
//! Usage: table4_equal_ipc [--scale smoke|bench|full] [--threads N]
fn main() {
    earlyreg_experiments::engine::shim_main("table4");
}
