//! Runs the design-choice ablation (register reuse, speculation depth,
//! conditional releases) over the whole suite.
//!
//! Usage: ablation_design_choices [--scale smoke|bench|full] [--threads N]
use earlyreg_experiments::{ablation, ExperimentOptions};
fn main() {
    let options = match ExperimentOptions::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = ablation::run(&options);
    print!("{}", ablation::render(&result));
}
