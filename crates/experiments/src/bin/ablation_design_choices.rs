//! Runs the design-choice ablation (register reuse, speculation depth,
//! conditional releases) over the whole suite.
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run ablation --no-cache`.
//!
//! Usage: ablation_design_choices [--scale smoke|bench|full] [--threads N]
fn main() {
    earlyreg_experiments::engine::shim_main("ablation");
}
