//! Prints the paper's Table 3 together with the synthetic kernels this
//! reproduction substitutes for the SPEC95 programs.
fn main() {
    print!("{}", earlyreg_experiments::context::render_table3());
}
