//! Prints the paper's Table 3 together with the synthetic kernels this
//! reproduction substitutes for the SPEC95 programs.
//!
//! Shim over the experiment engine — equivalent to
//! `earlyreg-exp run table3 --no-cache`.
fn main() {
    earlyreg_experiments::engine::shim_main("table3");
}
