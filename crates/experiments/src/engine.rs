//! The declarative experiment engine.
//!
//! Every table and figure of the paper is described by an [`Experiment`]:
//! an id, a title, a *plan* (the simulation points it needs) and a *render*
//! (the report it produces from the results).  The engine turns any set of
//! experiments into one shared sweep:
//!
//! 1. **Plan** — each experiment contributes its points through a shared
//!    [`PlanContext`] (one workload suite, one instruction budget, one
//!    [`Scenario`] of machine/sweep overrides for all of them).
//! 2. **Dedup** — the union of all plans is sorted by [`RunPoint`] and
//!    deduplicated by content digest, so a point two experiments share (e.g.
//!    Figure 10's 48-register points inside Figure 11's sweep) is simulated
//!    exactly once.
//! 3. **Cache** — each unique point is looked up in an optional on-disk
//!    [`PointCache`] keyed by (point, machine config, workload program,
//!    budget); only misses are simulated, on the parallel runner, and stored
//!    back.
//! 4. **Render** — every experiment renders its [`Report`] from the shared
//!    [`ResultSet`]; the [`RunSummary`] reports planned / unique / cache-hit
//!    / simulated point counts.
//!
//! The `earlyreg-exp` binary is a thin CLI over [`registry`] and [`run`];
//! the historical per-experiment binaries are shims over [`shim_main`].

use crate::cache::{fnv1a64, CacheKey, PointCache};
use crate::config::{ExperimentOptions, Scenario};
use crate::report::{emit, Format, Report};
use crate::runner::{run_configured_point, run_parallel, RunPoint, RunResult};
use crate::{ablation, context, fig03, fig09, fig10, fig11, sec33, sec44, table4};
use earlyreg_core::ReleasePolicy;
use earlyreg_sim::{MachineConfig, SimStats};
use earlyreg_workloads::{suite, Scale, Workload, WorkloadClass};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// One planned simulation point: coordinates plus the exact machine to
/// simulate and its content-addressed identity.
#[derive(Debug, Clone)]
pub struct PlannedPoint {
    /// Point coordinates.
    pub point: RunPoint,
    /// The machine configuration to simulate.
    pub config: MachineConfig,
    /// Full cache identity of the point.
    pub key: CacheKey,
    /// Digest of `key` (cached; file name in the point cache and dedup key).
    pub digest: u64,
}

/// The instantiated workload suite at one scale, plus the program
/// fingerprints that enter every cache key.
///
/// Building one is expensive — it generates every synthetic program — so
/// long-lived callers (the `earlyreg-serve` service in particular) build one
/// per scale and share it across [`PlanContext`]s through an [`Arc`] via
/// [`PlanContext::with_workloads`].
pub struct WorkloadSet {
    scale: Scale,
    workloads: Vec<Workload>,
    fingerprints: HashMap<&'static str, u64>,
}

impl WorkloadSet {
    /// Instantiate the suite at the requested scale and fingerprint every
    /// generated program.
    pub fn new(scale: Scale) -> Self {
        let workloads = suite(scale);
        let fingerprints = workloads
            .iter()
            .map(|w| {
                let canonical = serde::Serialize::to_value(&*w.program).canonical();
                (w.name(), fnv1a64(canonical.as_bytes()))
            })
            .collect();
        WorkloadSet {
            scale,
            workloads,
            fingerprints,
        }
    }

    /// The scale this set was instantiated at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Every workload in the suite.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Find one workload by name.
    pub fn workload(&self, name: &str) -> Option<&Workload> {
        self.workloads.iter().find(|w| w.name() == name)
    }
}

/// Shared planning state: options, scenario and the workload suite, built
/// once per engine run and shared by every experiment.
pub struct PlanContext {
    /// Execution options (scale, threads, instruction budget).
    pub options: ExperimentOptions,
    /// Machine/sweep overrides.
    pub scenario: Scenario,
    set: Arc<WorkloadSet>,
    /// The workloads the sweeps cover: the scenario's `workloads = ...`
    /// selection, or the paper's Table 3 suite by default.  A subset of
    /// `set` — the full registry stays addressable through
    /// [`Self::workload`] / [`Self::all_workloads`].
    selected: Vec<Workload>,
}

impl PlanContext {
    /// Build the context, instantiating a fresh [`WorkloadSet`] at the
    /// options' scale.
    pub fn new(options: ExperimentOptions, scenario: Scenario) -> Self {
        let set = Arc::new(WorkloadSet::new(options.scale));
        Self::with_workloads(options, scenario, set)
    }

    /// Build the context around an existing (shared) workload set.
    ///
    /// # Panics
    ///
    /// Panics if the set was instantiated at a different scale than the
    /// options request — the fingerprints would not describe the programs
    /// actually simulated.
    pub fn with_workloads(
        options: ExperimentOptions,
        scenario: Scenario,
        set: Arc<WorkloadSet>,
    ) -> Self {
        assert_eq!(
            options.scale,
            set.scale(),
            "workload set scale does not match the requested options"
        );
        let selected = scenario
            .workload_ids()
            .into_iter()
            .map(|id| {
                set.workload(id)
                    .unwrap_or_else(|| panic!("registered workload '{id}' missing from the set"))
                    .clone()
            })
            .collect();
        PlanContext {
            options,
            scenario,
            set,
            selected,
        }
    }

    /// The workloads the sweeps cover (the scenario's selection; the paper's
    /// Table 3 suite by default).
    pub fn workloads(&self) -> &[Workload] {
        &self.selected
    }

    /// Every registered workload at this context's scale, selection aside
    /// (API listings, explicit point requests).
    pub fn all_workloads(&self) -> &[Workload] {
        self.set.workloads()
    }

    /// Find one workload by name, anywhere in the registry (not just the
    /// sweep selection).
    pub fn workload(&self, name: &str) -> Option<&Workload> {
        self.set.workload(name)
    }

    /// The machine for one point: Table 2 plus the scenario's overrides.
    pub fn machine(&self, policy: ReleasePolicy, phys_int: usize, phys_fp: usize) -> MachineConfig {
        self.scenario.machine(policy, phys_int, phys_fp)
    }

    /// Plan one point under an explicit machine configuration.
    pub fn point_with_config(&self, point: RunPoint, config: MachineConfig) -> PlannedPoint {
        let key = CacheKey::new(
            point,
            serde::Serialize::to_value(&config).canonical(),
            self.set
                .fingerprints
                .get(point.workload)
                .copied()
                .unwrap_or_else(|| panic!("unknown workload '{}'", point.workload)),
            self.options.max_instructions,
        );
        let digest = key.digest();
        PlannedPoint {
            point,
            config,
            key,
            digest,
        }
    }

    /// Plan one point on the scenario machine.
    pub fn point(
        &self,
        workload: &Workload,
        policy: ReleasePolicy,
        phys_int: usize,
        phys_fp: usize,
    ) -> PlannedPoint {
        let point = RunPoint {
            workload: workload.name(),
            class: workload.class(),
            policy,
            phys_int,
            phys_fp,
        };
        self.point_with_config(point, self.machine(policy, phys_int, phys_fp))
    }

    /// Plan the cross product of the selected workloads x policies x
    /// (symmetric) sizes on the scenario machine.
    pub fn cross(&self, policies: &[ReleasePolicy], sizes: &[usize]) -> Vec<PlannedPoint> {
        self.cross_class(None, policies, sizes)
    }

    /// Like [`Self::cross`], restricted to one benchmark group.
    pub fn cross_class(
        &self,
        class: Option<WorkloadClass>,
        policies: &[ReleasePolicy],
        sizes: &[usize],
    ) -> Vec<PlannedPoint> {
        let mut points = Vec::new();
        for workload in self.workloads() {
            if class.is_some_and(|c| workload.class() != c) {
                continue;
            }
            for &policy in policies {
                for &size in sizes {
                    points.push(self.point(workload, policy, size, size));
                }
            }
        }
        points
    }
}

/// The simulated (or cache-loaded) results of a set of planned points,
/// addressed by content digest.
#[derive(Debug, Default)]
pub struct ResultSet {
    entries: HashMap<u64, RunResult>,
}

impl ResultSet {
    /// Number of distinct points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no point has been resolved.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The result of one planned point.
    pub fn get(&self, point: &PlannedPoint) -> Option<&RunResult> {
        self.entries.get(&point.digest)
    }

    /// Record the result of one resolved point ([`PointResolver`]s call
    /// this).
    pub fn insert(&mut self, digest: u64, result: RunResult) {
        self.entries.insert(digest, result);
    }

    /// The statistics of one planned point.
    pub fn stats(&self, point: &PlannedPoint) -> Option<&SimStats> {
        self.get(point).map(|r| &r.stats)
    }

    /// Materialise the results of a plan, in plan order.  Panics if a point
    /// was never resolved — experiments must render from the same plan they
    /// submitted.
    pub fn collect(&self, plan: &[PlannedPoint]) -> Vec<RunResult> {
        plan.iter()
            .map(|p| {
                self.get(p)
                    .unwrap_or_else(|| panic!("unresolved point {:?}", p.point))
                    .clone()
            })
            .collect()
    }
}

/// A declarative experiment: what to simulate and how to report it.
pub trait Experiment: Sync {
    /// Stable id used on the command line and in file names ("fig03").
    fn id(&self) -> &'static str;
    /// One-line description.
    fn title(&self) -> &'static str;
    /// The simulation points this experiment needs (empty for analytic or
    /// context-only experiments).
    fn plan(&self, ctx: &PlanContext) -> Vec<PlannedPoint>;
    /// Render the report from resolved results.
    fn render(&self, ctx: &PlanContext, results: &ResultSet) -> Report;
}

/// Every registered experiment, in the paper's presentation order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(context::Table1),
        Box::new(context::Table3),
        Box::new(fig03::Fig03),
        Box::new(sec33::Sec33),
        Box::new(fig09::Fig09),
        Box::new(sec44::Sec44),
        Box::new(fig10::Fig10),
        Box::new(fig11::Fig11),
        Box::new(table4::Table4),
        Box::new(ablation::Ablation),
    ]
}

/// Resolve experiment ids (or `all`) against the registry.
pub fn select(ids: &[String]) -> Result<Vec<Box<dyn Experiment>>, String> {
    let all = registry();
    if ids.is_empty() || ids.iter().any(|id| id == "all") {
        return Ok(all);
    }
    let mut selected = Vec::new();
    for id in ids {
        match all.iter().position(|e| e.id() == id) {
            Some(_) => {}
            None => {
                let known: Vec<&str> = all.iter().map(|e| e.id()).collect();
                return Err(format!(
                    "unknown experiment '{id}'; known: {}",
                    known.join(" ")
                ));
            }
        }
    }
    // Preserve registry order and drop duplicates.
    for experiment in all {
        if ids.iter().any(|id| id == experiment.id()) {
            selected.push(experiment);
        }
    }
    Ok(selected)
}

/// Counters of one engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Ids of the experiments that ran.
    pub experiments: Vec<&'static str>,
    /// Points requested across all experiment plans.
    pub planned: usize,
    /// Distinct points after cross-experiment dedup.
    pub unique: usize,
    /// Points answered by the on-disk cache.
    pub cache_hits: usize,
    /// Points answered by another in-flight computation (single-flight
    /// resolvers only; always 0 for [`CacheResolver`]).
    pub coalesced: usize,
    /// Points actually simulated.
    pub simulated: usize,
    /// The full resolver counters, including the tiered-resolver extras
    /// (`lru_hits`, `peer_hits`, ...); the first three fields above are
    /// copies of its leading counters, kept for compatibility.
    pub resolve: ResolveStats,
}

impl RunSummary {
    /// One-line human summary (the CLI prints it; CI greps it, so the
    /// leading fields are format-stable; tiered-resolver counters are
    /// appended only when any of them fired).
    pub fn line(&self) -> String {
        let mut line = format!(
            "points: planned={} unique={} cache_hits={} coalesced={} simulated={}",
            self.planned, self.unique, self.cache_hits, self.coalesced, self.simulated,
        );
        let remote = &self.resolve;
        if remote.lru_hits + remote.peer_hits + remote.peer_failures + remote.breaker_skips > 0 {
            line.push_str(&format!(
                " lru_hits={} peer_hits={} peer_failures={} breaker_trips={}",
                remote.lru_hits, remote.peer_hits, remote.peer_failures, remote.breaker_trips,
            ));
        }
        line.push_str(&format!(" (experiments: {})", self.experiments.join(" ")));
        line
    }
}

/// The reports and counters of one engine run.
pub struct EngineOutcome {
    /// One report per experiment, in the order they were selected.
    pub reports: Vec<Report>,
    /// Planner/cache counters.
    pub summary: RunSummary,
}

/// Counters of one plan resolution.
///
/// The first three tiers are what [`CacheResolver`] reports; the remaining
/// counters belong to tiered resolvers (`earlyreg-serve`'s chain: in-memory
/// LRU → disk cache → remote peers → local compute) and stay zero
/// elsewhere.  Whatever the mix, the *results* are identical — the tiers
/// only change where the bits come from, never what they are.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Points answered by the on-disk cache.
    pub cache_hits: usize,
    /// Points answered by another in-flight computation (single-flight
    /// resolvers).
    pub coalesced: usize,
    /// Points simulated by this resolution.
    pub simulated: usize,
    /// Points answered by an in-memory LRU tier.
    pub lru_hits: usize,
    /// Points answered by a remote peer.
    pub peer_hits: usize,
    /// Failed remote attempts (each one degraded to the next tier).
    pub peer_failures: usize,
    /// Circuit breakers tripped open during this resolution.
    pub breaker_trips: usize,
    /// Remote hops skipped outright because a breaker was open.
    pub breaker_skips: usize,
}

/// Strategy for turning a deduplicated plan into results.
///
/// The engine ships [`CacheResolver`] (cache lookup, parallel simulation of
/// the misses, store-back); `earlyreg-serve` provides a single-flight
/// resolver that additionally dedups identical points across concurrent
/// requests.  The input slice is sorted by [`RunPoint`] and deduplicated by
/// digest; the returned [`ResultSet`] must contain every point in it.
pub trait PointResolver: Sync {
    /// Resolve every planned point.
    fn resolve(&self, ctx: &PlanContext, unique: &[PlannedPoint]) -> (ResultSet, ResolveStats);
}

/// Simulate one planned point (the workload must exist in the context's
/// suite).  The shared primitive under every resolver.
pub fn simulate_planned(ctx: &PlanContext, planned: &PlannedPoint) -> RunResult {
    let workload = ctx
        .workload(planned.point.workload)
        .unwrap_or_else(|| panic!("unknown workload '{}'", planned.point.workload));
    run_configured_point(
        workload,
        planned.point,
        planned.config,
        ctx.options.max_instructions,
    )
}

/// The default resolver: answer what the on-disk cache can, simulate the
/// misses in parallel, store fresh results back.
pub struct CacheResolver<'a> {
    /// The backing cache (`None` simulates everything).
    pub cache: Option<&'a PointCache>,
}

impl PointResolver for CacheResolver<'_> {
    fn resolve(&self, ctx: &PlanContext, unique: &[PlannedPoint]) -> (ResultSet, ResolveStats) {
        let mut results = ResultSet::default();
        let mut misses = Vec::new();
        let mut stats = ResolveStats::default();
        for planned in unique {
            match self.cache.and_then(|c| c.load(&planned.key)) {
                Some(cached) => {
                    stats.cache_hits += 1;
                    results.insert(
                        planned.digest,
                        RunResult {
                            point: planned.point,
                            stats: cached,
                        },
                    );
                }
                None => misses.push(planned),
            }
        }

        // Batched lockstep scheduling: execute same-workload lanes
        // consecutively (one shared decoded trace per workload), largest
        // groups first to minimise the parallel tail.  Results are keyed by
        // digest, so execution order never affects the output.
        let order = crate::runner::batch_order(&misses, |p| p.point.workload);
        let misses: Vec<&PlannedPoint> = order.into_iter().map(|i| misses[i]).collect();

        let simulated = run_parallel(ctx.options.effective_threads(), &misses, |planned| {
            simulate_planned(ctx, planned)
        });
        for (planned, result) in misses.iter().zip(simulated) {
            if let Some(cache) = self.cache {
                if let Err(error) = cache.store(&planned.key, &result.stats) {
                    eprintln!("warning: cannot cache point {:?}: {error}", planned.point);
                }
            }
            stats.simulated += 1;
            results.insert(planned.digest, result);
        }
        (results, stats)
    }
}

/// Sort a union of plans by [`RunPoint`] and drop digest duplicates — the
/// canonical pre-resolution normalisation.
pub fn dedup_plan(mut union: Vec<PlannedPoint>) -> Vec<PlannedPoint> {
    union.sort_by_key(|p| (p.point, p.digest));
    union.dedup_by_key(|p| p.digest);
    union
}

/// Resolve a plan against an optional disk cache: dedup, cache lookups,
/// parallel simulation of the misses, store-back.
pub fn resolve_plan(
    ctx: &PlanContext,
    plan: &[PlannedPoint],
    cache: Option<&PointCache>,
) -> ResultSet {
    let unique = dedup_plan(plan.to_vec());
    CacheResolver { cache }.resolve(ctx, &unique).0
}

/// Resolve a plan without a disk cache — the path the per-module `run()`
/// convenience functions (and their tests) use.
pub fn simulate(ctx: &PlanContext, plan: &[PlannedPoint]) -> ResultSet {
    resolve_plan(ctx, plan, None)
}

/// Run a set of experiments as one shared sweep through an explicit
/// resolver.  Plans the union, dedups it, resolves it, renders every report
/// — no file or stdout side effects.
pub fn run_with(
    experiments: &[&dyn Experiment],
    ctx: &PlanContext,
    resolver: &dyn PointResolver,
) -> EngineOutcome {
    let plans: Vec<Vec<PlannedPoint>> = experiments.iter().map(|e| e.plan(ctx)).collect();
    let planned: usize = plans.iter().map(Vec::len).sum();
    let unique = dedup_plan(plans.into_iter().flatten().collect());
    let (results, resolve_stats) = resolver.resolve(ctx, &unique);
    let reports = experiments
        .iter()
        .map(|e| e.render(ctx, &results))
        .collect();
    EngineOutcome {
        reports,
        summary: RunSummary {
            experiments: experiments.iter().map(|e| e.id()).collect(),
            planned,
            unique: unique.len(),
            cache_hits: resolve_stats.cache_hits,
            coalesced: resolve_stats.coalesced,
            simulated: resolve_stats.simulated,
            resolve: resolve_stats,
        },
    }
}

/// Run a set of experiments as one shared sweep against an optional disk
/// cache.
pub fn run(
    experiments: &[&dyn Experiment],
    ctx: &PlanContext,
    cache: Option<&PointCache>,
) -> EngineOutcome {
    run_with(experiments, ctx, &CacheResolver { cache })
}

/// Run experiments selected by id through an explicit resolver and return
/// their reports as values — the entry point `earlyreg-serve` and other
/// embedders consume.  Nothing is printed or written.
pub fn run_reports(
    ids: &[String],
    ctx: &PlanContext,
    resolver: &dyn PointResolver,
) -> Result<EngineOutcome, String> {
    let experiments = select(ids)?;
    let refs: Vec<&dyn Experiment> = experiments.iter().map(|e| e.as_ref()).collect();
    Ok(run_with(&refs, ctx, resolver))
}

/// Entry point of the historical per-experiment binaries: parse the classic
/// flags, run the one experiment through the engine (no disk cache) and
/// print its text report — byte-for-byte what the pre-engine binary printed.
pub fn shim_main(id: &str) {
    let options = match ExperimentOptions::from_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let ctx = PlanContext::new(options, Scenario::table2());
    let registry = registry();
    let experiment = registry
        .iter()
        .find(|e| e.id() == id)
        .unwrap_or_else(|| panic!("experiment '{id}' is not registered"));
    let outcome = run(&[experiment.as_ref()], &ctx, None);
    emit(&outcome.reports[0], Format::Text, None).expect("stdout write");
}

/// Run experiments for a one-shot caller (the CLI, tests, tools): select by
/// id, run on the given cache, emit every report in `format` under `out`.
/// A thin consumer of [`run_reports`] — all rendering happens on the
/// returned [`Report`] values.
pub fn run_to_files(
    ids: &[String],
    ctx: &PlanContext,
    cache: Option<&PointCache>,
    format: Format,
    out: Option<&Path>,
) -> Result<EngineOutcome, String> {
    let outcome = run_reports(ids, ctx, &CacheResolver { cache })?;
    for report in &outcome.reports {
        emit(report, format, out).map_err(|e| format!("cannot write report: {e}"))?;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    fn smoke_ctx() -> PlanContext {
        PlanContext::new(
            ExperimentOptions {
                scale: Scale::Smoke,
                threads: 2,
                max_instructions: 10_000,
            },
            Scenario::table2(),
        )
    }

    #[test]
    fn registry_ids_are_unique_and_stable() {
        let registry = registry();
        let ids: Vec<&str> = registry.iter().map(|e| e.id()).collect();
        assert_eq!(
            ids,
            [
                "table1", "table3", "fig03", "sec33", "fig09", "sec44", "fig10", "fig11", "table4",
                "ablation"
            ]
        );
    }

    #[test]
    fn select_resolves_ids_and_rejects_unknown() {
        assert_eq!(
            select(&["all".to_string()]).unwrap().len(),
            registry().len()
        );
        let picked = select(&["fig10".to_string(), "fig03".to_string()]).unwrap();
        // Registry order is preserved regardless of request order.
        assert_eq!(
            picked.iter().map(|e| e.id()).collect::<Vec<_>>(),
            ["fig03", "fig10"]
        );
        assert!(select(&["fig99".to_string()]).is_err());
    }

    #[test]
    fn planner_dedups_shared_points() {
        let ctx = smoke_ctx();
        // Two plans sharing 10 conventional 48-register points.
        let a = ctx.cross(&[ReleasePolicy::Conventional], &[48, 64]);
        let b = ctx.cross(&[ReleasePolicy::Conventional], &[48]);
        let union: Vec<PlannedPoint> = a.iter().chain(b.iter()).cloned().collect();
        assert_eq!(union.len(), 30);
        let results = simulate(&ctx, &union);
        assert_eq!(results.len(), 20, "the shared points collapse");
        for point in &b {
            assert!(results.stats(point).is_some());
        }
    }

    #[test]
    fn scenario_workloads_select_the_sweep_set() {
        let ctx = smoke_ctx();
        // Default: the paper ten, even though the registry holds more.
        assert_eq!(ctx.workloads().len(), 10);
        assert!(ctx.all_workloads().len() > ctx.workloads().len());
        // Asm kernels stay addressable outside the selection.
        assert!(ctx.workload("matmul").is_some());

        let selected = PlanContext::new(
            ctx.options,
            Scenario::parse("asm", "workloads = matmul, hazard").unwrap(),
        );
        let names: Vec<&str> = selected.workloads().iter().map(|w| w.name()).collect();
        assert_eq!(names, ["matmul", "hazard"]);
        let plan = selected.cross(&[ReleasePolicy::Extended], &[48]);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|p| names.contains(&p.point.workload)));
    }

    #[test]
    fn scenario_overrides_change_point_identity() {
        let ctx = smoke_ctx();
        let tight = PlanContext::new(
            ctx.options,
            Scenario {
                ros_size: Some(64),
                ..Scenario::table2()
            },
        );
        let workload = ctx.workload("swim").unwrap().clone();
        let a = ctx.point(&workload, ReleasePolicy::Extended, 48, 48);
        let b = tight.point(&workload, ReleasePolicy::Extended, 48, 48);
        assert_eq!(a.point, b.point);
        assert_ne!(a.digest, b.digest, "machine overrides must change the key");
        assert_eq!(b.config.ros_size, 64);
    }
}
