//! Figure 11 — harmonic-mean IPC versus physical register file size
//! (40–160 registers per class) for the three policies, one panel per
//! benchmark group.
//!
//! Expected shape (paper): `extended ≥ basic ≥ conv` everywhere; the gap is
//! widest for the tightest files and closes as the file approaches the loose
//! regime (`P ≥ L + N`); FP codes keep a visible gap up to ≈ 104 registers
//! while integer codes only benefit below ≈ 64 registers.
//!
//! The sweep axis defaults to the paper's [`FIG11_SIZES`] and can be
//! overridden per scenario (`sweep_sizes = ...`), so wider or denser sweeps
//! are a config entry rather than a code change.

use crate::config::{ExperimentOptions, Scenario, FIG11_SIZES};
use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::metrics::harmonic_mean;
use crate::report::{
    policy_comparison_headers, policy_comparison_row, NamedTable, Report, TextTable,
};
use crate::runner::RunResult;
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::WorkloadClass;
use serde::{Deserialize, Serialize};

/// Harmonic-mean IPC of one group at one size under one policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig11Point {
    /// Benchmark group.
    pub class: WorkloadClass,
    /// Release policy.
    pub policy: ReleasePolicy,
    /// Physical registers per class.
    pub size: usize,
    /// Harmonic-mean IPC of the group.
    pub hmean_ipc: f64,
}

/// Full Figure 11 data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Result {
    /// Register sizes swept.
    pub sizes: Vec<usize>,
    /// Policies compared, in column order; the first is the speedup
    /// baseline.
    pub policies: Vec<ReleasePolicy>,
    /// All (class, policy, size) points.
    pub points: Vec<Fig11Point>,
    /// Raw per-benchmark results (sorted by point).
    pub raw: Vec<RunResult>,
}

impl Fig11Result {
    /// The harmonic-mean IPC curve (size → IPC) of a group under a policy.
    pub fn curve(&self, class: WorkloadClass, policy: ReleasePolicy) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .filter(|p| p.class == class && p.policy == policy)
            .map(|p| (p.size, p.hmean_ipc))
            .collect()
    }

    /// Harmonic-mean IPC of a group under a policy at one size.
    pub fn hmean_at(
        &self,
        class: WorkloadClass,
        policy: ReleasePolicy,
        size: usize,
    ) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.class == class && p.policy == policy && p.size == size)
            .map(|p| p.hmean_ipc)
    }
}

/// Compute the per-group harmonic means from raw results.
pub fn summarise(
    raw: &[RunResult],
    sizes: &[usize],
    policies: &[ReleasePolicy],
) -> Vec<Fig11Point> {
    let mut points = Vec::new();
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        for &policy in policies {
            for &size in sizes {
                let values: Vec<f64> = raw
                    .iter()
                    .filter(|r| {
                        r.point.class == class
                            && r.point.policy == policy
                            && r.point.phys_int == size
                    })
                    .map(|r| r.ipc())
                    .collect();
                if !values.is_empty() {
                    points.push(Fig11Point {
                        class,
                        policy,
                        size,
                        hmean_ipc: harmonic_mean(&values),
                    });
                }
            }
        }
    }
    points
}

/// The points Figure 11 needs: the full cross product of the scenario's
/// policy set over the scenario's sweep axis.
pub fn plan(ctx: &PlanContext) -> Vec<PlannedPoint> {
    ctx.cross(&ctx.scenario.policies(), &ctx.scenario.sweep_sizes())
}

fn assemble(raw: Vec<RunResult>, sizes: &[usize], policies: &[ReleasePolicy]) -> Fig11Result {
    let mut raw = raw;
    raw.sort_by_key(|r| r.point);
    Fig11Result {
        sizes: sizes.to_vec(),
        policies: policies.to_vec(),
        points: summarise(&raw, sizes, policies),
        raw,
    }
}

/// Run the Figure 11 sweep over the given sizes (use [`FIG11_SIZES`] for the
/// paper's axis).
pub fn run_with_sizes(options: &ExperimentOptions, sizes: &[usize]) -> Fig11Result {
    let scenario = Scenario {
        sweep_sizes: Some(sizes.to_vec()),
        ..Scenario::table2()
    };
    let ctx = PlanContext::new(*options, scenario);
    let plan = plan(&ctx);
    let results = crate::engine::simulate(&ctx, &plan);
    let policies = ctx.scenario.policies();
    assemble(results.collect(&plan), sizes, &policies)
}

/// Run the full Figure 11 sweep.
pub fn run(options: &ExperimentOptions) -> Fig11Result {
    run_with_sizes(options, &FIG11_SIZES)
}

/// One harmonic-mean table per benchmark group, with one column per
/// compared policy and one speedup column per non-baseline policy (the
/// shared column convention of `report::policy_comparison_headers`).
pub fn tables(result: &Fig11Result) -> Vec<NamedTable> {
    let labels: Vec<&'static str> = result.policies.iter().map(|p| p.label()).collect();
    [WorkloadClass::Int, WorkloadClass::Fp]
        .into_iter()
        .map(|class| {
            let mut table = TextTable::new(policy_comparison_headers("registers", &labels));
            for &size in &result.sizes {
                let ipc: Vec<f64> = result
                    .policies
                    .iter()
                    .map(|&p| result.hmean_at(class, p, size).unwrap_or(0.0))
                    .collect();
                table.row(policy_comparison_row(size.to_string(), &ipc));
            }
            NamedTable::new(
                match class {
                    WorkloadClass::Int => "int",
                    WorkloadClass::Fp => "fp",
                },
                table,
            )
        })
        .collect()
}

/// Render both panels of Figure 11.
pub fn render(result: &Fig11Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 11 — harmonic-mean IPC vs number of physical registers per class\n\n");
    for (class, table) in [WorkloadClass::Int, WorkloadClass::Fp]
        .into_iter()
        .zip(tables(result))
    {
        out.push_str(&format!("{} programs\n", class.label()));
        out.push_str(&table.table.render());
        out.push('\n');
    }
    out.push_str(
        "paper reference: FP speedups decrease smoothly from ~10% (40 regs) to ~2% (104 regs); \
         integer speedups from ~11% (40 regs) to ~2% (64 regs); curves merge for loose files\n",
    );
    out
}

/// The Figure 11 experiment.
pub struct Fig11;

impl Experiment for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }

    fn title(&self) -> &'static str {
        "Figure 11 — harmonic-mean IPC vs register file size"
    }

    fn plan(&self, ctx: &PlanContext) -> Vec<PlannedPoint> {
        plan(ctx)
    }

    fn render(&self, ctx: &PlanContext, results: &ResultSet) -> Report {
        let sizes = ctx.scenario.sweep_sizes();
        let policies = ctx.scenario.policies();
        let result = assemble(results.collect(&plan(ctx)), &sizes, &policies);
        Report {
            experiment: self.id(),
            title: self.title(),
            text: render(&result),
            tables: tables(&result),
            data: serde::Serialize::to_value(&result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn fig11_small_sweep_has_expected_shape() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 25_000,
        };
        let result = run_with_sizes(&options, &[40, 96]);
        assert_eq!(result.sizes, vec![40, 96]);
        assert_eq!(result.policies, earlyreg_core::PAPER_POLICIES.to_vec());
        // 2 classes x 3 policies x 2 sizes
        assert_eq!(result.points.len(), 12);
        // Raw results come back point-sorted.
        assert!(result.raw.windows(2).all(|w| w[0].point < w[1].point));
        for class in [WorkloadClass::Int, WorkloadClass::Fp] {
            for policy in earlyreg_core::PAPER_POLICIES {
                let small = result.hmean_at(class, policy, 40).unwrap();
                let large = result.hmean_at(class, policy, 96).unwrap();
                assert!(large >= small * 0.98, "{class:?} {policy:?}: IPC must not drop with more registers ({small} -> {large})");
            }
            // Early release helps at the tight end (within noise it must not hurt).
            let conv = result
                .hmean_at(class, ReleasePolicy::Conventional, 40)
                .unwrap();
            let ext = result.hmean_at(class, ReleasePolicy::Extended, 40).unwrap();
            assert!(ext >= conv * 0.98);
        }
        let text = render(&result);
        assert!(text.contains("registers"));
        assert!(text.contains("integer programs"));
        assert!(text.contains("floating point programs"));
    }
}
