//! Figure 11 — harmonic-mean IPC versus physical register file size
//! (40–160 registers per class) for the three policies, one panel per
//! benchmark group.
//!
//! Expected shape (paper): `extended ≥ basic ≥ conv` everywhere; the gap is
//! widest for the tightest files and closes as the file approaches the loose
//! regime (`P ≥ L + N`); FP codes keep a visible gap up to ≈ 104 registers
//! while integer codes only benefit below ≈ 64 registers.

use crate::config::{ExperimentOptions, FIG11_SIZES};
use crate::metrics::{harmonic_mean, speedup};
use crate::report::{fmt, fmt_pct, TextTable};
use crate::runner::{cross_points, run_sweep, RunResult};
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::{suite, WorkloadClass};
use serde::{Deserialize, Serialize};

/// Harmonic-mean IPC of one group at one size under one policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig11Point {
    /// Benchmark group.
    pub class: WorkloadClass,
    /// Release policy.
    pub policy: ReleasePolicy,
    /// Physical registers per class.
    pub size: usize,
    /// Harmonic-mean IPC of the group.
    pub hmean_ipc: f64,
}

/// Full Figure 11 data.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Result {
    /// Register sizes swept.
    pub sizes: Vec<usize>,
    /// All (class, policy, size) points.
    pub points: Vec<Fig11Point>,
    /// Raw per-benchmark results (reused by Table 4 and Section 3.3).
    pub raw: Vec<RunResult>,
}

impl Fig11Result {
    /// The harmonic-mean IPC curve (size → IPC) of a group under a policy.
    pub fn curve(&self, class: WorkloadClass, policy: ReleasePolicy) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .filter(|p| p.class == class && p.policy == policy)
            .map(|p| (p.size, p.hmean_ipc))
            .collect()
    }

    /// Harmonic-mean IPC of a group under a policy at one size.
    pub fn hmean_at(
        &self,
        class: WorkloadClass,
        policy: ReleasePolicy,
        size: usize,
    ) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.class == class && p.policy == policy && p.size == size)
            .map(|p| p.hmean_ipc)
    }
}

/// Compute the per-group harmonic means from raw results.
pub fn summarise(raw: &[RunResult], sizes: &[usize]) -> Vec<Fig11Point> {
    let mut points = Vec::new();
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        for policy in ReleasePolicy::ALL {
            for &size in sizes {
                let values: Vec<f64> = raw
                    .iter()
                    .filter(|r| {
                        r.point.class == class
                            && r.point.policy == policy
                            && r.point.phys_int == size
                    })
                    .map(|r| r.ipc())
                    .collect();
                if !values.is_empty() {
                    points.push(Fig11Point {
                        class,
                        policy,
                        size,
                        hmean_ipc: harmonic_mean(&values),
                    });
                }
            }
        }
    }
    points
}

/// Run the Figure 11 sweep over the given sizes (use [`FIG11_SIZES`] for the
/// paper's axis).
pub fn run_with_sizes(options: &ExperimentOptions, sizes: &[usize]) -> Fig11Result {
    let workloads = suite(options.scale);
    let points = cross_points(&workloads, &ReleasePolicy::ALL, sizes);
    let raw = run_sweep(options, points);
    Fig11Result {
        sizes: sizes.to_vec(),
        points: summarise(&raw, sizes),
        raw,
    }
}

/// Run the full Figure 11 sweep.
pub fn run(options: &ExperimentOptions) -> Fig11Result {
    run_with_sizes(options, &FIG11_SIZES)
}

/// Render both panels of Figure 11.
pub fn render(result: &Fig11Result) -> String {
    let mut out = String::new();
    out.push_str("Figure 11 — harmonic-mean IPC vs number of physical registers per class\n\n");
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        let mut table = TextTable::new([
            "registers",
            "conv",
            "basic",
            "extended",
            "basic/conv",
            "ext/conv",
        ]);
        for &size in &result.sizes {
            let conv = result
                .hmean_at(class, ReleasePolicy::Conventional, size)
                .unwrap_or(0.0);
            let basic = result
                .hmean_at(class, ReleasePolicy::Basic, size)
                .unwrap_or(0.0);
            let extended = result
                .hmean_at(class, ReleasePolicy::Extended, size)
                .unwrap_or(0.0);
            table.row([
                size.to_string(),
                fmt(conv, 3),
                fmt(basic, 3),
                fmt(extended, 3),
                fmt_pct(speedup(basic, conv)),
                fmt_pct(speedup(extended, conv)),
            ]);
        }
        out.push_str(&format!("{} programs\n", class.label()));
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(
        "paper reference: FP speedups decrease smoothly from ~10% (40 regs) to ~2% (104 regs); \
         integer speedups from ~11% (40 regs) to ~2% (64 regs); curves merge for loose files\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn fig11_small_sweep_has_expected_shape() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 25_000,
        };
        let result = run_with_sizes(&options, &[40, 96]);
        assert_eq!(result.sizes, vec![40, 96]);
        // 2 classes x 3 policies x 2 sizes
        assert_eq!(result.points.len(), 12);
        for class in [WorkloadClass::Int, WorkloadClass::Fp] {
            for policy in ReleasePolicy::ALL {
                let small = result.hmean_at(class, policy, 40).unwrap();
                let large = result.hmean_at(class, policy, 96).unwrap();
                assert!(large >= small * 0.98, "{class:?} {policy:?}: IPC must not drop with more registers ({small} -> {large})");
            }
            // Early release helps at the tight end (within noise it must not hurt).
            let conv = result
                .hmean_at(class, ReleasePolicy::Conventional, 40)
                .unwrap();
            let ext = result.hmean_at(class, ReleasePolicy::Extended, 40).unwrap();
            assert!(ext >= conv * 0.98);
        }
        let text = render(&result);
        assert!(text.contains("registers"));
        assert!(text.contains("integer programs"));
        assert!(text.contains("floating point programs"));
    }
}
