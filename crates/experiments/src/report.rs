//! Report rendering: text tables plus the multi-format report backends of
//! the experiment engine.
//!
//! Every experiment renders into a [`Report`]: the exact text the historical
//! per-experiment binary printed, the tables behind it (for the CSV backend)
//! and the result struct serialized into a [`serde::value::Value`] (for the
//! JSON backend).  [`emit`] writes a report through the backend selected by
//! [`Format`].

use serde::value::Value;
use std::io;
use std::path::{Path, PathBuf};

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (it is padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// The table as a serialized value (`{"header": [...], "rows": [[...]]}`)
    /// — the JSON `data` of experiments that have no richer result struct.
    pub fn to_value(&self) -> Value {
        let row_value =
            |cells: &[String]| Value::Seq(cells.iter().map(|c| Value::Str(c.clone())).collect());
        Value::Map(vec![
            ("header".to_string(), row_value(&self.header)),
            (
                "rows".to_string(),
                Value::Seq(self.rows.iter().map(|r| row_value(r)).collect()),
            ),
        ])
    }

    /// Render as RFC 4180 CSV: cells containing commas, quotes or newlines
    /// are quoted, with embedded quotes doubled.
    pub fn render_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(['"', ',', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let render_line = |cells: &[String]| -> String {
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut out = String::new();
        out.push_str(&render_line(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_line(row));
            out.push('\n');
        }
        out
    }
}

/// Headers for a per-policy comparison table: `first`, one value column per
/// policy, then one `<policy>/<baseline>` speedup column per non-baseline
/// policy (the first policy is the speedup baseline).  The shared column
/// convention of the dynamic-policy figures (10 and 11).
pub fn policy_comparison_headers<S: AsRef<str>>(first: &str, policies: &[S]) -> Vec<String> {
    let mut headers = vec![first.to_string()];
    headers.extend(policies.iter().map(|p| p.as_ref().to_string()));
    if let Some(baseline) = policies.first() {
        for policy in policies.iter().skip(1) {
            headers.push(format!("{}/{}", policy.as_ref(), baseline.as_ref()));
        }
    }
    headers
}

/// Cells of one per-policy comparison row matching
/// [`policy_comparison_headers`]: the row name, each value to three
/// decimals, then each non-baseline value as a percent speedup over the
/// first.
pub fn policy_comparison_row(name: String, values: &[f64]) -> Vec<String> {
    let mut cells = vec![name];
    cells.extend(values.iter().map(|&v| fmt(v, 3)));
    let base = values.first().copied().unwrap_or(0.0);
    cells.extend(
        values
            .iter()
            .skip(1)
            .map(|&v| fmt_pct(crate::metrics::speedup(v, base))),
    );
    cells
}

/// A table with a name, so the CSV backend can write one file per table.
#[derive(Debug, Clone)]
pub struct NamedTable {
    /// Short machine-friendly name ("int", "fp", "energy", ...).
    pub name: String,
    /// The table data.
    pub table: TextTable,
}

impl NamedTable {
    /// Name a table.
    pub fn new<S: Into<String>>(name: S, table: TextTable) -> Self {
        NamedTable {
            name: name.into(),
            table,
        }
    }
}

/// A fully rendered experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id ("fig03", "table4", ...).
    pub experiment: &'static str,
    /// One-line human description.
    pub title: &'static str,
    /// The text rendering (exactly what the historical binary printed).
    pub text: String,
    /// The tables behind the text, for the CSV backend.
    pub tables: Vec<NamedTable>,
    /// The experiment's result struct as a serialized value, for the JSON
    /// backend.
    pub data: Value,
}

impl Report {
    /// The JSON envelope of this report as a value (experiment id, title,
    /// result data) — shared by the JSON file backend and the HTTP service.
    pub fn envelope(&self) -> Value {
        Value::Map(vec![
            (
                "experiment".to_string(),
                Value::Str(self.experiment.to_string()),
            ),
            ("title".to_string(), Value::Str(self.title.to_string())),
            ("data".to_string(), self.data.clone()),
        ])
    }

    /// The JSON document of this report: the pretty-printed envelope.
    pub fn json(&self) -> String {
        let mut out = String::new();
        // Reuse the pretty writer through a tiny Serialize shim.
        struct Raw<'a>(&'a Value);
        impl serde::Serialize for Raw<'_> {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        out.push_str(&serde::json::to_string_pretty(&Raw(&self.envelope())));
        out.push('\n');
        out
    }
}

/// Report output backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable text to stdout (and `<id>.txt` under `--out`).
    Text,
    /// `<id>.json` under `--out` (or stdout without one).
    Json,
    /// One `<id>_<table>.csv` per table under `--out` (or stdout).
    Csv,
}

impl Format {
    /// Parse a `--format` value.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!("unknown format '{other}' (text|json|csv)")),
        }
    }
}

/// One rendered output file: `(file name, content)`.
pub type Artifact = (String, String);

/// Render one report through a backend into named artifacts, without
/// touching stdout or the filesystem — the pure core [`emit`] (and any other
/// consumer, such as the HTTP service) builds on.
pub fn render(report: &Report, format: Format) -> Vec<Artifact> {
    match format {
        Format::Text => vec![(format!("{}.txt", report.experiment), report.text.clone())],
        Format::Json => vec![(format!("{}.json", report.experiment), report.json())],
        Format::Csv => report
            .tables
            .iter()
            .map(|named| {
                (
                    format!("{}_{}.csv", report.experiment, named.name),
                    named.table.render_csv(),
                )
            })
            .collect(),
    }
}

/// Emit one report through the selected backend: write [`render`]'s
/// artifacts under `out_dir`, or print to stdout without one (text always
/// prints).  Returns the files written.
pub fn emit(report: &Report, format: Format, out_dir: Option<&Path>) -> io::Result<Vec<PathBuf>> {
    if format == Format::Text {
        print!("{}", report.text);
    }
    let mut written = Vec::new();
    match out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            for (name, content) in render(report, format) {
                let path = dir.join(name);
                std::fs::write(&path, content)?;
                written.push(path);
            }
        }
        None => match format {
            Format::Text => {}
            Format::Json => print!("{}", report.json()),
            Format::Csv => {
                for named in &report.tables {
                    println!("# {} {}", report.experiment, named.name);
                    print!("{}", named.table.render_csv());
                }
            }
        },
    }
    Ok(written)
}

/// Format a float with the given number of decimals; non-finite values
/// (zero-cycle or zero-baseline degenerate runs) render as `n/a`.
pub fn fmt(value: f64, decimals: usize) -> String {
    if !value.is_finite() {
        return "n/a".to_string();
    }
    format!("{value:.decimals$}")
}

/// Format a ratio as a signed percentage ("+5.2%"); non-finite ratios (a
/// zero-denominator speedup) render as `n/a` instead of `+NaN%`/`+inf%`.
/// The JSON backend writes the same non-finite values as `null` (see the
/// vendored serde's `write_f64`), so every format has a defined placeholder.
pub fn fmt_pct(ratio: f64) -> String {
    if !ratio.is_finite() {
        return "n/a".to_string();
    }
    format!("{:+.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["bench", "IPC"]);
        t.row(["compress", "1.23"]);
        t.row(["go", "0.98"]);
        let text = t.render();
        assert!(text.contains("bench"));
        assert!(text.lines().count() == 4);
        // Every data line has the same length as the header line.
        let lens: Vec<usize> = text.lines().map(|l| l.len()).collect();
        assert_eq!(lens[0], lens[2]);
        assert_eq!(lens[0], lens[3]);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.render_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn csv_quotes_cells_with_commas_and_quotes() {
        // Table 3's paper-input cells contain commas; RFC 4180 quoting keeps
        // the column count intact for CSV consumers.
        let mut t = TextTable::new(["name", "input"]);
        t.row(["applu", "train (dt=1.5e-03, nx=ny=nz=13)"]);
        t.row(["odd", "say \"hi\""]);
        assert_eq!(
            t.render_csv(),
            "name,input\napplu,\"train (dt=1.5e-03, nx=ny=nz=13)\"\nodd,\"say \"\"hi\"\"\"\n"
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.052), "+5.2%");
        assert_eq!(fmt_pct(-0.1), "-10.0%");
    }

    #[test]
    fn non_finite_values_render_as_na() {
        // A zero-cycle smoke run has IPC 0/0 = NaN and a zero-baseline
        // speedup is inf; both must render as a defined placeholder, never
        // "+NaN%" / "inf".
        assert_eq!(fmt(f64::NAN, 3), "n/a");
        assert_eq!(fmt(f64::INFINITY, 2), "n/a");
        assert_eq!(fmt_pct(f64::NAN), "n/a");
        assert_eq!(fmt_pct(f64::INFINITY), "n/a");
        assert_eq!(fmt_pct(f64::NEG_INFINITY), "n/a");
    }

    #[test]
    fn render_produces_named_artifacts_without_io() {
        let mut table = TextTable::new(["x"]);
        table.row(["1"]);
        let report = Report {
            experiment: "fig99",
            title: "test",
            text: "hello\n".to_string(),
            data: table.to_value(),
            tables: vec![NamedTable::new("main", table)],
        };
        assert_eq!(
            render(&report, Format::Text),
            vec![("fig99.txt".to_string(), "hello\n".to_string())]
        );
        let json = render(&report, Format::Json);
        assert_eq!(json[0].0, "fig99.json");
        assert!(serde::json::parse(&json[0].1).is_ok());
        assert_eq!(
            render(&report, Format::Csv),
            vec![("fig99_main.csv".to_string(), "x\n1\n".to_string())]
        );
    }
}
