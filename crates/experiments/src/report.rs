//! Plain-text table rendering for the experiment binaries.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (it is padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (comma separated, no quoting — cells must not contain
    /// commas).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Format a ratio as a signed percentage ("+5.2%").
pub fn fmt_pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["bench", "IPC"]);
        t.row(["compress", "1.23"]);
        t.row(["go", "0.98"]);
        let text = t.render();
        assert!(text.contains("bench"));
        assert!(text.lines().count() == 4);
        // Every data line has the same length as the header line.
        let lens: Vec<usize> = text.lines().map(|l| l.len()).collect();
        assert_eq!(lens[0], lens[2]);
        assert_eq!(lens[0], lens[3]);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.render_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.052), "+5.2%");
        assert_eq!(fmt_pct(-0.1), "-10.0%");
    }
}
