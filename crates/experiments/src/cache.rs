//! On-disk, content-addressed cache of simulated points.
//!
//! Every experiment point is a pure function of *(run point, machine
//! configuration, workload program, instruction budget)* — the simulator is
//! deterministic — so its [`SimStats`] can be cached across runs and across
//! experiments.  The cache key is the canonical serialization of exactly
//! those inputs:
//!
//! * the [`RunPoint`] coordinates,
//! * the full [`MachineConfig`] (canonical JSON, so *any* config change —
//!   scenario overrides, ablation knobs, Table 2 edits — changes the key),
//! * a fingerprint of the generated workload program (which covers the
//!   workload generator's seed, scale and code), and
//! * the committed-instruction budget.
//!
//! Entries are stored as `<digest>.json` files containing both the canonical
//! key (verified on load, so a digest collision degrades to a miss instead of
//! returning wrong data) and the full statistics.  JSON integers round-trip
//! bit-identically through the vendored serde, so a cache hit is
//! indistinguishable from a cold simulation — `tests/experiment_engine.rs`
//! asserts `SimStats` equality end to end.
//!
//! # Schema versioning
//!
//! The key carries [`CACHE_VERSION`].  **Bump it whenever a change alters
//! what a cached entry means**: simulator-semantics fixes, `SimStats` field
//! changes, workload-generator changes not covered by the program
//! fingerprint, or changes to the key schema itself.  Old entries then
//! key-verify against a different canonical string and degrade to misses —
//! stale statistics are never served.  Do *not* bump it for changes that are
//! already part of the key (machine config, budget, workload programs).
//!
//! # Concurrency
//!
//! A cache directory may be shared by any number of threads and processes
//! (parallel `earlyreg-exp` runs, the `earlyreg-serve` worker pool).  The
//! invariants are:
//!
//! * **store is atomic** — entries are written to a uniquely named temp file
//!   in the cache directory and `rename`d into place, so a reader observes
//!   either no entry or a complete one, never a torn write;
//! * **load degrades to a miss** — an unreadable, unparsable, or
//!   key-mismatched entry returns `None` (and concurrent stores of the same
//!   digest write identical bytes, so whichever rename lands last is
//!   equivalent).  `load` never returns an error.

use crate::runner::RunPoint;
use earlyreg_sim::SimStats;
use serde::{json, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the cached-entry semantics; part of every [`CacheKey`].
///
/// History: version 1 was the implicit (unversioned) PR 3 key schema;
/// version 2 added this field to the canonical key; version 3 switched the
/// policy encoding inside [`RunPoint`] (and the machine config) from enum
/// variant names (`"Extended"`) to registry ids (`"extended"`) — a key
/// *schema* change, so pre-registry entries are retired explicitly rather
/// than orphaned silently.  Within one version, policy ids are open-ended:
/// registering a *new* scheme extends the keyspace and needs no bump.
/// See the module docs for the bump policy.
pub const CACHE_VERSION: u32 = 3;

/// 64-bit FNV-1a — small, dependency-free and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The full identity of one simulation point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CacheKey {
    /// Schema/semantics version; always [`CACHE_VERSION`] for fresh keys
    /// (see [`CacheKey::new`]).  Entries written under another version
    /// key-verify differently and degrade to misses.
    pub version: u32,
    /// Point coordinates.
    pub point: RunPoint,
    /// Canonical JSON of the machine configuration actually simulated.
    pub machine: String,
    /// FNV-1a fingerprint of the workload's generated program.
    pub workload_fingerprint: u64,
    /// Committed-instruction budget of the run.
    pub max_instructions: u64,
}

impl CacheKey {
    /// Build a key at the current [`CACHE_VERSION`].
    pub fn new(
        point: RunPoint,
        machine: String,
        workload_fingerprint: u64,
        max_instructions: u64,
    ) -> Self {
        CacheKey {
            version: CACHE_VERSION,
            point,
            machine,
            workload_fingerprint,
            max_instructions,
        }
    }

    /// Canonical string form (the content that is addressed).
    pub fn canonical(&self) -> String {
        serde::Serialize::to_value(self).canonical()
    }

    /// Content digest: the cache file name.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }
}

/// A directory of `<digest>.json` point entries.
#[derive(Debug, Clone)]
pub struct PointCache {
    dir: PathBuf,
}

impl PointCache {
    /// Open (without creating) a cache directory.
    pub fn new<P: Into<PathBuf>>(dir: P) -> Self {
        PointCache { dir: dir.into() }
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File path of one entry.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{:016x}.json", key.digest()))
    }

    /// Look up a point.  Any unreadable, unparsable or key-mismatched entry
    /// is treated as a miss.
    pub fn load(&self, key: &CacheKey) -> Option<SimStats> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let value = json::parse(&text).ok()?;
        let stored_key = value.get("key")?.as_str()?;
        if stored_key != key.canonical() {
            return None;
        }
        serde::Deserialize::from_value(value.get("stats")?).ok()
    }

    /// Store a point (creates the cache directory on first use).
    ///
    /// The entry is written to a temp file unique to this writer (process id
    /// plus a process-wide counter) in the cache directory and `rename`d
    /// into place, so concurrent writers never interleave bytes in a shared
    /// temp file and a reader can never observe a torn entry — a shared
    /// `<digest>.tmp` name would let writer B truncate the file writer A is
    /// about to rename.
    pub fn store(&self, key: &CacheKey, stats: &SimStats) -> io::Result<PathBuf> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(key);
        let entry = serde::value::Value::Map(vec![
            ("key".to_string(), serde::value::Value::Str(key.canonical())),
            ("stats".to_string(), serde::Serialize::to_value(stats)),
        ]);
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            key.digest(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, entry.canonical())?;
        if let Err(error) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(error);
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_core::ReleasePolicy;
    use earlyreg_workloads::WorkloadClass;

    fn key(max_instructions: u64) -> CacheKey {
        CacheKey::new(
            RunPoint {
                workload: "swim",
                class: WorkloadClass::Fp,
                policy: ReleasePolicy::Extended,
                phys_int: 48,
                phys_fp: 48,
            },
            "{\"fetch_width\":8}".to_string(),
            0xdead_beef,
            max_instructions,
        )
    }

    #[test]
    fn digests_are_stable_and_input_sensitive() {
        assert_eq!(key(100).digest(), key(100).digest());
        assert_ne!(key(100).digest(), key(101).digest());
        let mut other = key(100);
        other.machine.push('x');
        assert_ne!(other.digest(), key(100).digest());
    }

    #[test]
    fn cache_version_is_part_of_the_key() {
        let current = key(100);
        assert_eq!(current.version, CACHE_VERSION);
        let mut old = key(100);
        old.version = CACHE_VERSION - 1;
        // A version bump changes both the digest (different file) and the
        // canonical key (so even a digest collision would key-verify to a
        // miss): stale entries can never be served.
        assert_ne!(old.digest(), current.digest());
        assert_ne!(old.canonical(), current.canonical());
        assert!(current.canonical().contains("\"version\":"));
    }

    #[test]
    fn store_load_round_trip_and_mismatch_misses() {
        let dir = std::env::temp_dir().join(format!("earlyreg-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = PointCache::new(&dir);
        let key = key(4242);
        assert_eq!(cache.load(&key), None, "empty cache must miss");

        let stats = SimStats {
            cycles: 77,
            committed: u64::MAX - 9,
            halted: true,
            ..Default::default()
        };
        cache.store(&key, &stats).unwrap();
        assert_eq!(
            cache.load(&key),
            Some(stats.clone()),
            "hit is bit-identical"
        );

        // Corrupt the entry: the load degrades to a miss.
        std::fs::write(cache.entry_path(&key), "{not json").unwrap();
        assert_eq!(cache.load(&key), None);

        // A different key hashing to a different file also misses.
        assert_eq!(cache.load(&self::key(1)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
