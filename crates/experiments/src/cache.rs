//! On-disk, content-addressed cache of simulated points.
//!
//! Every experiment point is a pure function of *(run point, machine
//! configuration, workload program, instruction budget)* — the simulator is
//! deterministic — so its [`SimStats`] can be cached across runs and across
//! experiments.  The cache key is the canonical serialization of exactly
//! those inputs:
//!
//! * the [`RunPoint`] coordinates,
//! * the full [`MachineConfig`] (canonical JSON, so *any* config change —
//!   scenario overrides, ablation knobs, Table 2 edits — changes the key),
//! * a fingerprint of the generated workload program (which covers the
//!   workload generator's seed, scale and code), and
//! * the committed-instruction budget.
//!
//! Entries are stored as `<digest>.json` files containing both the canonical
//! key (verified on load, so a digest collision degrades to a miss instead of
//! returning wrong data) and the full statistics.  JSON integers round-trip
//! bit-identically through the vendored serde, so a cache hit is
//! indistinguishable from a cold simulation — `tests/experiment_engine.rs`
//! asserts `SimStats` equality end to end.

use crate::runner::RunPoint;
use earlyreg_sim::SimStats;
use serde::{json, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a — small, dependency-free and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The full identity of one simulation point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CacheKey {
    /// Point coordinates.
    pub point: RunPoint,
    /// Canonical JSON of the machine configuration actually simulated.
    pub machine: String,
    /// FNV-1a fingerprint of the workload's generated program.
    pub workload_fingerprint: u64,
    /// Committed-instruction budget of the run.
    pub max_instructions: u64,
}

impl CacheKey {
    /// Canonical string form (the content that is addressed).
    pub fn canonical(&self) -> String {
        serde::Serialize::to_value(self).canonical()
    }

    /// Content digest: the cache file name.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }
}

/// A directory of `<digest>.json` point entries.
#[derive(Debug, Clone)]
pub struct PointCache {
    dir: PathBuf,
}

impl PointCache {
    /// Open (without creating) a cache directory.
    pub fn new<P: Into<PathBuf>>(dir: P) -> Self {
        PointCache { dir: dir.into() }
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File path of one entry.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{:016x}.json", key.digest()))
    }

    /// Look up a point.  Any unreadable, unparsable or key-mismatched entry
    /// is treated as a miss.
    pub fn load(&self, key: &CacheKey) -> Option<SimStats> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let value = json::parse(&text).ok()?;
        let stored_key = value.get("key")?.as_str()?;
        if stored_key != key.canonical() {
            return None;
        }
        serde::Deserialize::from_value(value.get("stats")?).ok()
    }

    /// Store a point (creates the cache directory on first use).
    pub fn store(&self, key: &CacheKey, stats: &SimStats) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(key);
        let entry = serde::value::Value::Map(vec![
            ("key".to_string(), serde::value::Value::Str(key.canonical())),
            ("stats".to_string(), serde::Serialize::to_value(stats)),
        ]);
        // Write via a temp file + rename so a crashed run never leaves a
        // truncated entry behind (a torn entry would just miss, but why risk
        // it).
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, entry.canonical())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_core::ReleasePolicy;
    use earlyreg_workloads::WorkloadClass;

    fn key(max_instructions: u64) -> CacheKey {
        CacheKey {
            point: RunPoint {
                workload: "swim",
                class: WorkloadClass::Fp,
                policy: ReleasePolicy::Extended,
                phys_int: 48,
                phys_fp: 48,
            },
            machine: "{\"fetch_width\":8}".to_string(),
            workload_fingerprint: 0xdead_beef,
            max_instructions,
        }
    }

    #[test]
    fn digests_are_stable_and_input_sensitive() {
        assert_eq!(key(100).digest(), key(100).digest());
        assert_ne!(key(100).digest(), key(101).digest());
        let mut other = key(100);
        other.machine.push('x');
        assert_ne!(other.digest(), key(100).digest());
    }

    #[test]
    fn store_load_round_trip_and_mismatch_misses() {
        let dir = std::env::temp_dir().join(format!("earlyreg-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = PointCache::new(&dir);
        let key = key(4242);
        assert_eq!(cache.load(&key), None, "empty cache must miss");

        let stats = SimStats {
            cycles: 77,
            committed: u64::MAX - 9,
            halted: true,
            ..Default::default()
        };
        cache.store(&key, &stats).unwrap();
        assert_eq!(
            cache.load(&key),
            Some(stats.clone()),
            "hit is bit-identical"
        );

        // Corrupt the entry: the load degrades to a miss.
        std::fs::write(cache.entry_path(&key), "{not json").unwrap();
        assert_eq!(cache.load(&key), None);

        // A different key hashing to a different file also misses.
        assert_eq!(cache.load(&self::key(1)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
