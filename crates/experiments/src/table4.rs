//! Table 4 — register file sizes giving equal IPC.
//!
//! The paper shows that the extended mechanism reaches the IPC of a
//! conventional machine with a smaller register file:
//!
//! | group | conv | extended | saved |
//! |-------|------|----------|-------|
//! | FP    | 69   | 64       | 7.2 % |
//! | FP    | 79   | 72       | 8.9 % |
//! | int   | 64   | 56       | 12.5 % |
//! | int   | 72   | 64       | 11.1 % |
//!
//! The reproduction measures the conventional harmonic-mean IPC at the
//! paper's reference sizes and interpolates the extended-policy IPC curve to
//! find the size at which it matches.

use crate::config::ExperimentOptions;
use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::metrics::{harmonic_mean, interpolate_equal_ipc};
use crate::report::{fmt, fmt_pct, NamedTable, Report, TextTable};
use crate::runner::RunResult;
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::WorkloadClass;
use serde::{Deserialize, Serialize};

/// Conventional reference sizes examined per group (paper's Table 4 rows).
pub const CONV_SIZES_FP: [usize; 2] = [69, 79];
/// Conventional reference sizes for the integer group.
pub const CONV_SIZES_INT: [usize; 2] = [64, 72];
/// Grid over which the extended-policy IPC curve is sampled.
pub const EXTENDED_GRID: [usize; 9] = [40, 44, 48, 56, 64, 72, 80, 88, 96];

/// One row of Table 4.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table4Row {
    /// Benchmark group.
    pub class: WorkloadClass,
    /// Conventional register file size (per class).
    pub conv_size: usize,
    /// Conventional harmonic-mean IPC at that size.
    pub conv_ipc: f64,
    /// Interpolated extended-policy size reaching the same IPC
    /// (`None` when the extended curve never reaches it on the grid).
    pub extended_size: Option<f64>,
}

impl Table4Row {
    /// Fraction of registers saved.
    pub fn saved_fraction(&self) -> Option<f64> {
        self.extended_size
            .map(|ext| (self.conv_size as f64 - ext) / self.conv_size as f64)
    }
}

/// Full Table 4 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Result {
    /// Rows in the paper's order (FP pair, then integer pair).
    pub rows: Vec<Table4Row>,
}

fn group_hmean(raw: &[RunResult], class: WorkloadClass, policy: ReleasePolicy, size: usize) -> f64 {
    let values: Vec<f64> = raw
        .iter()
        .filter(|r| r.point.class == class && r.point.policy == policy && r.point.phys_int == size)
        .map(|r| r.ipc())
        .collect();
    harmonic_mean(&values)
}

/// The points Table 4 needs: per-group conventional reference sizes plus the
/// extended-policy interpolation grid.
pub fn plan(ctx: &PlanContext) -> Vec<PlannedPoint> {
    let mut points = Vec::new();
    points.extend(ctx.cross_class(
        Some(WorkloadClass::Fp),
        &[ReleasePolicy::Conventional],
        &CONV_SIZES_FP,
    ));
    points.extend(ctx.cross_class(
        Some(WorkloadClass::Int),
        &[ReleasePolicy::Conventional],
        &CONV_SIZES_INT,
    ));
    points.extend(ctx.cross_class(
        Some(WorkloadClass::Fp),
        &[ReleasePolicy::Extended],
        &EXTENDED_GRID,
    ));
    points.extend(ctx.cross_class(
        Some(WorkloadClass::Int),
        &[ReleasePolicy::Extended],
        &EXTENDED_GRID,
    ));
    points
}

/// Summarise raw sweep results into the Table 4 rows.
pub fn summarise(raw: &[RunResult]) -> Table4Result {
    let mut raw: Vec<RunResult> = raw.to_vec();
    raw.sort_by_key(|r| r.point);
    let mut rows = Vec::new();
    for (class, conv_sizes) in [
        (WorkloadClass::Fp, CONV_SIZES_FP),
        (WorkloadClass::Int, CONV_SIZES_INT),
    ] {
        let curve: Vec<(usize, f64)> = EXTENDED_GRID
            .iter()
            .map(|&size| {
                (
                    size,
                    group_hmean(&raw, class, ReleasePolicy::Extended, size),
                )
            })
            .collect();
        for &conv_size in &conv_sizes {
            let conv_ipc = group_hmean(&raw, class, ReleasePolicy::Conventional, conv_size);
            let extended_size = interpolate_equal_ipc(&curve, conv_ipc);
            rows.push(Table4Row {
                class,
                conv_size,
                conv_ipc,
                extended_size,
            });
        }
    }
    Table4Result { rows }
}

/// Run the Table 4 experiment standalone (engine path, no disk cache).
pub fn run(options: &ExperimentOptions) -> Table4Result {
    let ctx = PlanContext::new(*options, crate::config::Scenario::table2());
    let plan = plan(&ctx);
    let results = crate::engine::simulate(&ctx, &plan);
    summarise(&results.collect(&plan))
}

/// The equal-IPC table.
pub fn tables(result: &Table4Result) -> Vec<NamedTable> {
    let mut table = TextTable::new(["group", "conv size", "conv IPC", "extended size", "saved"]);
    for row in &result.rows {
        table.row([
            row.class.label().to_string(),
            row.conv_size.to_string(),
            fmt(row.conv_ipc, 3),
            row.extended_size
                .map(|s| fmt(s, 1))
                .unwrap_or_else(|| "n/a".to_string()),
            row.saved_fraction()
                .map(fmt_pct)
                .unwrap_or_else(|| "n/a".to_string()),
        ]);
    }
    vec![NamedTable::new("equal_ipc", table)]
}

/// Render Table 4.
pub fn render(result: &Table4Result) -> String {
    let mut out = String::new();
    out.push_str("Table 4 — register file sizes giving equal IPC (per class)\n\n");
    out.push_str(&tables(result)[0].table.render());
    out.push_str(
        "\npaper reference: FP 69→64 (7.2% saved) and 79→72 (8.9%); \
         integer 64→56 (12.5%) and 72→64 (11.1%)\n",
    );
    out
}

/// The Table 4 experiment.
pub struct Table4;

impl Experiment for Table4 {
    fn id(&self) -> &'static str {
        "table4"
    }

    fn title(&self) -> &'static str {
        "Table 4 — register file sizes giving equal IPC"
    }

    fn plan(&self, ctx: &PlanContext) -> Vec<PlannedPoint> {
        plan(ctx)
    }

    fn render(&self, ctx: &PlanContext, results: &ResultSet) -> Report {
        let result = summarise(&results.collect(&plan(ctx)));
        Report {
            experiment: self.id(),
            title: self.title(),
            text: render(&result),
            tables: tables(&result),
            data: serde::Serialize::to_value(&result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saved_fraction_matches_definition() {
        let row = Table4Row {
            class: WorkloadClass::Fp,
            conv_size: 80,
            conv_ipc: 2.0,
            extended_size: Some(72.0),
        };
        assert!((row.saved_fraction().unwrap() - 0.1).abs() < 1e-12);
        let none = Table4Row {
            extended_size: None,
            ..row
        };
        assert_eq!(none.saved_fraction(), None);
    }

    #[test]
    fn render_handles_missing_extended_sizes() {
        let result = Table4Result {
            rows: vec![Table4Row {
                class: WorkloadClass::Int,
                conv_size: 64,
                conv_ipc: 1.5,
                extended_size: None,
            }],
        };
        let text = render(&result);
        assert!(text.contains("n/a"));
    }
}
