//! Experiment-wide options.

use earlyreg_workloads::Scale;
use serde::{Deserialize, Serialize};

/// The register-file sizes swept in Figure 11 (both panels use the same
/// x-axis: 40–128 in steps of 8, plus 160).
pub const FIG11_SIZES: [usize; 13] = [40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 160];

/// Options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOptions {
    /// Workload scale (dynamic instruction budget per benchmark).
    pub scale: Scale,
    /// Worker threads for the simulation sweep (`0` = one per CPU).
    pub threads: usize,
    /// Cap on committed instructions per simulation point (a safety net on
    /// top of the workload's own halt).
    pub max_instructions: u64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            scale: Scale::Full,
            threads: 0,
            max_instructions: 5_000_000,
        }
    }
}

impl ExperimentOptions {
    /// Options for the given scale with defaults for everything else.
    pub fn with_scale(scale: Scale) -> Self {
        ExperimentOptions {
            scale,
            ..Default::default()
        }
    }

    /// Parse command-line arguments of the experiment binaries.
    ///
    /// Recognised flags: `--scale smoke|bench|full`, `--threads N`.
    /// Unknown flags produce an error message listing the supported ones.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut options = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let value = iter.next().ok_or("--scale requires a value")?;
                    options.scale = match value.as_str() {
                        "smoke" => Scale::Smoke,
                        "bench" => Scale::Bench,
                        "full" => Scale::Full,
                        other => return Err(format!("unknown scale '{other}' (smoke|bench|full)")),
                    };
                }
                "--threads" => {
                    let value = iter.next().ok_or("--threads requires a value")?;
                    options.threads = value
                        .parse()
                        .map_err(|_| format!("invalid thread count '{value}'"))?;
                }
                "--help" | "-h" => {
                    return Err("usage: [--scale smoke|bench|full] [--threads N]".to_string())
                }
                other => return Err(format!("unknown argument '{other}'; try --help")),
            }
        }
        Ok(options)
    }

    /// Number of worker threads to actually use.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_options() {
        let o = ExperimentOptions::default();
        assert_eq!(o.scale, Scale::Full);
        assert!(o.effective_threads() >= 1);
    }

    #[test]
    fn parses_scale_and_threads() {
        let o =
            ExperimentOptions::from_args(args(&["--scale", "smoke", "--threads", "3"])).unwrap();
        assert_eq!(o.scale, Scale::Smoke);
        assert_eq!(o.threads, 3);
        assert_eq!(o.effective_threads(), 3);
    }

    #[test]
    fn rejects_unknown_arguments() {
        assert!(ExperimentOptions::from_args(args(&["--bogus"])).is_err());
        assert!(ExperimentOptions::from_args(args(&["--scale", "huge"])).is_err());
        assert!(ExperimentOptions::from_args(args(&["--help"])).is_err());
    }

    #[test]
    fn fig11_sizes_match_the_paper_axis() {
        assert_eq!(FIG11_SIZES.first(), Some(&40));
        assert_eq!(FIG11_SIZES.last(), Some(&160));
        assert_eq!(FIG11_SIZES.len(), 13);
    }
}
