//! Experiment-wide options and config-driven scenarios.

use earlyreg_core::ReleasePolicy;
use earlyreg_sim::MachineConfig;
use earlyreg_workloads::{registry as workloads_registry, Scale};
use serde::{Deserialize, Serialize};

/// The register-file sizes swept in Figure 11 (both panels use the same
/// x-axis: 40–128 in steps of 8, plus 160).
pub const FIG11_SIZES: [usize; 13] = [40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 160];

/// Options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOptions {
    /// Workload scale (dynamic instruction budget per benchmark).
    pub scale: Scale,
    /// Worker threads for the simulation sweep (`0` = one per CPU).
    pub threads: usize,
    /// Cap on committed instructions per simulation point (a safety net on
    /// top of the workload's own halt).
    pub max_instructions: u64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            scale: Scale::Full,
            threads: 0,
            max_instructions: 5_000_000,
        }
    }
}

impl ExperimentOptions {
    /// Options for the given scale with defaults for everything else.
    pub fn with_scale(scale: Scale) -> Self {
        ExperimentOptions {
            scale,
            ..Default::default()
        }
    }

    /// Parse one scale name.
    pub fn parse_scale(value: &str) -> Result<Scale, String> {
        match value {
            "smoke" => Ok(Scale::Smoke),
            "bench" => Ok(Scale::Bench),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (smoke|bench|full)")),
        }
    }

    /// Parse a `--threads`/`--jobs` value.
    pub fn parse_threads(value: &str) -> Result<usize, String> {
        value
            .parse()
            .map_err(|_| format!("invalid thread count '{value}'"))
    }

    /// Parse a `--max-instructions` value.
    pub fn parse_budget(value: &str) -> Result<u64, String> {
        value
            .parse()
            .map_err(|_| format!("invalid instruction budget '{value}'"))
    }

    /// Parse command-line arguments of the experiment binaries.
    ///
    /// Recognised flags: `--scale smoke|bench|full`, `--threads N`,
    /// `--max-instructions N`.  Unknown flags produce an error message
    /// listing the supported ones.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut options = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let value = iter.next().ok_or("--scale requires a value")?;
                    options.scale = Self::parse_scale(&value)?;
                }
                "--threads" | "--jobs" => {
                    let value = iter.next().ok_or("--threads requires a value")?;
                    options.threads = Self::parse_threads(&value)?;
                }
                "--max-instructions" => {
                    let value = iter.next().ok_or("--max-instructions requires a value")?;
                    options.max_instructions = Self::parse_budget(&value)?;
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: [--scale smoke|bench|full] [--threads N] [--max-instructions N]"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown argument '{other}'; try --help")),
            }
        }
        Ok(options)
    }

    /// Number of worker threads to actually use.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// A *scenario*: machine and sweep overrides applied on top of the paper's
/// Table 2 baseline.
///
/// Scenarios make new experiment configurations a config entry instead of a
/// new crate module: every experiment plans its points through
/// [`crate::engine::PlanContext`], which routes all machine construction
/// through [`Scenario::machine`], the Figure 11 sweep axis through
/// [`Scenario::sweep_sizes`] and the policy set through
/// [`Scenario::policies`].  A scenario file is a list of `key = value`
/// lines (`#` comments allowed):
///
/// ```text
/// # A narrower machine with a short Release Queue, swept over four schemes.
/// ros_size = 64
/// lsq_size = 32
/// memory_latency = 120
/// max_pending_branches = 8
/// sweep_sizes = 40,48,56,64,80
/// policies = conv, basic, extended, oracle
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (reports mention it; "table2" for the baseline).
    pub name: String,
    /// Override of the Figure 11 register-file sweep axis.
    pub sweep_sizes: Option<Vec<usize>>,
    /// Override of the policy set the figure sweeps compare (ids from the
    /// policy registry; defaults to the paper's canonical three).
    pub policies: Option<Vec<ReleasePolicy>>,
    /// Override of the workload set the sweeps cover (canonical ids from the
    /// workload registry; defaults to the paper's Table 3 suite).  Stored
    /// canonicalised — aliases and case are resolved at parse time.
    pub workloads: Option<Vec<String>>,
    /// Reorder structure size (Table 2: 128).
    pub ros_size: Option<usize>,
    /// Load/store queue entries (Table 2: 64).
    pub lsq_size: Option<usize>,
    /// Main memory latency in cycles (Table 2: 50).
    pub memory_latency: Option<u32>,
    /// Maximum unverified branches / Release Queue depth (Table 2: 20).
    pub max_pending_branches: Option<usize>,
    /// gshare history bits (Table 2: 18).
    pub gshare_bits: Option<u32>,
    /// Fetch width (Table 2: 8).
    pub fetch_width: Option<usize>,
    /// Commit width (Table 2: 8).
    pub commit_width: Option<usize>,
}

/// Every key a scenario file may set, in the order [`Scenario::parse`]
/// matches them.  Unknown-key errors enumerate this list so a typo'd file
/// is self-diagnosing.
pub const SCENARIO_KEYS: [&str; 11] = [
    "name",
    "sweep_sizes",
    "policies",
    "workloads",
    "ros_size",
    "lsq_size",
    "memory_latency",
    "max_pending_branches",
    "gshare_bits",
    "fetch_width",
    "commit_width",
];

impl Scenario {
    /// The unmodified Table 2 baseline.
    pub fn table2() -> Self {
        Scenario {
            name: "table2".to_string(),
            ..Default::default()
        }
    }

    /// True when the scenario changes nothing relative to Table 2.
    pub fn is_baseline(&self) -> bool {
        let baseline = Scenario {
            name: self.name.clone(),
            ..Default::default()
        };
        *self == baseline
    }

    /// Build the machine for one point: Table 2, overridden by the scenario.
    pub fn machine(&self, policy: ReleasePolicy, phys_int: usize, phys_fp: usize) -> MachineConfig {
        let mut config = MachineConfig::icpp02(policy, phys_int, phys_fp);
        if let Some(ros) = self.ros_size {
            config.ros_size = ros;
            config.rename.ros_size = ros;
        }
        if let Some(lsq) = self.lsq_size {
            config.lsq_size = lsq;
        }
        if let Some(latency) = self.memory_latency {
            config.memory_latency = latency;
        }
        if let Some(branches) = self.max_pending_branches {
            config.rename.max_pending_branches = branches;
        }
        if let Some(bits) = self.gshare_bits {
            config.predictor.gshare_bits = bits;
        }
        if let Some(width) = self.fetch_width {
            config.fetch_width = width;
        }
        if let Some(width) = self.commit_width {
            config.commit_width = width;
        }
        config
    }

    /// The register-file sweep axis (Figure 11 and friends).
    pub fn sweep_sizes(&self) -> Vec<usize> {
        self.sweep_sizes
            .clone()
            .unwrap_or_else(|| FIG11_SIZES.to_vec())
    }

    /// The release policies the figure sweeps compare.  Defaults to the
    /// canonical paper three ([`earlyreg_core::PAPER_POLICIES`]); a scenario
    /// can name any subset of the registry (`policies = conv, oracle, ...`).
    pub fn policies(&self) -> Vec<ReleasePolicy> {
        self.policies
            .clone()
            .unwrap_or_else(|| earlyreg_core::PAPER_POLICIES.to_vec())
    }

    /// The workload ids the figure sweeps cover.  Defaults to the paper's
    /// Table 3 suite; a scenario can name any subset of the workload
    /// registry (`workloads = matmul, swim, ...`).
    pub fn workload_ids(&self) -> Vec<&'static str> {
        match &self.workloads {
            Some(names) => names
                .iter()
                .map(|name| {
                    workloads_registry::parse(name)
                        .expect("scenario workloads are validated at parse time")
                        .id
                })
                .collect(),
            None => workloads_registry::paper_descriptors()
                .map(|d| d.id)
                .collect(),
        }
    }

    /// Parse a scenario from `key = value` lines (see the type docs).
    pub fn parse(name: &str, text: &str) -> Result<Self, String> {
        let mut scenario = Scenario {
            name: name.to_string(),
            ..Default::default()
        };
        for (number, raw_line) in text.lines().enumerate() {
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected 'key = value'", number + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: invalid {what} '{value}'", number + 1);
            match key {
                "name" => scenario.name = value.to_string(),
                "sweep_sizes" => {
                    let sizes: Result<Vec<usize>, _> =
                        value.split(',').map(|s| s.trim().parse()).collect();
                    scenario.sweep_sizes = Some(sizes.map_err(|_| bad("size list"))?);
                }
                "policies" => {
                    // Parsed against the policy registry; an unknown name
                    // fails here with the registered ids enumerated.
                    let policies: Result<Vec<ReleasePolicy>, String> = value
                        .split(',')
                        .map(|s| ReleasePolicy::parse(s.trim()))
                        .collect();
                    scenario.policies =
                        Some(policies.map_err(|e| format!("line {}: {e}", number + 1))?);
                }
                "workloads" => {
                    // Parsed against the workload registry; an unknown name
                    // fails here with the registered ids enumerated.
                    let names: Result<Vec<String>, String> = value
                        .split(',')
                        .map(|s| workloads_registry::parse(s.trim()).map(|d| d.id.to_string()))
                        .collect();
                    scenario.workloads =
                        Some(names.map_err(|e| format!("line {}: {e}", number + 1))?);
                }
                "ros_size" => scenario.ros_size = Some(value.parse().map_err(|_| bad("ros_size"))?),
                "lsq_size" => scenario.lsq_size = Some(value.parse().map_err(|_| bad("lsq_size"))?),
                "memory_latency" => {
                    scenario.memory_latency =
                        Some(value.parse().map_err(|_| bad("memory_latency"))?)
                }
                "max_pending_branches" => {
                    scenario.max_pending_branches =
                        Some(value.parse().map_err(|_| bad("max_pending_branches"))?)
                }
                "gshare_bits" => {
                    scenario.gshare_bits = Some(value.parse().map_err(|_| bad("gshare_bits"))?)
                }
                "fetch_width" => {
                    scenario.fetch_width = Some(value.parse().map_err(|_| bad("fetch_width"))?)
                }
                "commit_width" => {
                    scenario.commit_width = Some(value.parse().map_err(|_| bad("commit_width"))?)
                }
                other => {
                    return Err(format!(
                        "line {}: unknown key '{other}' (valid keys: {})",
                        number + 1,
                        SCENARIO_KEYS.join(", ")
                    ))
                }
            }
        }
        // Surface invalid combinations (e.g. a non-power-of-two gshare) now,
        // with the file context, instead of deep inside a sweep.
        scenario
            .machine(ReleasePolicy::Extended, 64, 64)
            .validate()
            .map_err(|e| {
                format!(
                    "scenario '{}' builds an invalid machine: {e}",
                    scenario.name
                )
            })?;
        Ok(scenario)
    }

    /// Load a scenario from a file; the file stem becomes its default name.
    pub fn from_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read scenario {}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("scenario");
        Self::parse(name, &text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_options() {
        let o = ExperimentOptions::default();
        assert_eq!(o.scale, Scale::Full);
        assert!(o.effective_threads() >= 1);
    }

    #[test]
    fn parses_scale_and_threads() {
        let o =
            ExperimentOptions::from_args(args(&["--scale", "smoke", "--threads", "3"])).unwrap();
        assert_eq!(o.scale, Scale::Smoke);
        assert_eq!(o.threads, 3);
        assert_eq!(o.effective_threads(), 3);
    }

    #[test]
    fn parses_max_instructions_and_jobs_alias() {
        let o = ExperimentOptions::from_args(args(&["--max-instructions", "1234", "--jobs", "2"]))
            .unwrap();
        assert_eq!(o.max_instructions, 1234);
        assert_eq!(o.threads, 2);
    }

    #[test]
    fn rejects_unknown_arguments() {
        assert!(ExperimentOptions::from_args(args(&["--bogus"])).is_err());
        assert!(ExperimentOptions::from_args(args(&["--scale", "huge"])).is_err());
        assert!(ExperimentOptions::from_args(args(&["--help"])).is_err());
    }

    #[test]
    fn fig11_sizes_match_the_paper_axis() {
        assert_eq!(FIG11_SIZES.first(), Some(&40));
        assert_eq!(FIG11_SIZES.last(), Some(&160));
        assert_eq!(FIG11_SIZES.len(), 13);
    }

    #[test]
    fn baseline_scenario_is_table2() {
        let scenario = Scenario::table2();
        assert!(scenario.is_baseline());
        let config = scenario.machine(ReleasePolicy::Extended, 96, 96);
        assert_eq!(
            config,
            MachineConfig::icpp02(ReleasePolicy::Extended, 96, 96)
        );
        assert_eq!(scenario.sweep_sizes(), FIG11_SIZES.to_vec());
    }

    #[test]
    fn scenario_parse_applies_overrides() {
        let text = "\
            # tighter machine\n\
            ros_size = 64\n\
            memory_latency = 120  # slow DRAM\n\
            sweep_sizes = 40, 48, 64\n";
        let scenario = Scenario::parse("tight", text).unwrap();
        assert!(!scenario.is_baseline());
        assert_eq!(scenario.name, "tight");
        assert_eq!(scenario.sweep_sizes(), vec![40, 48, 64]);
        let config = scenario.machine(ReleasePolicy::Basic, 48, 48);
        assert_eq!(config.ros_size, 64);
        assert_eq!(config.rename.ros_size, 64);
        assert_eq!(config.memory_latency, 120);
        config.validate().unwrap();
    }

    #[test]
    fn scenario_policies_parse_against_the_registry() {
        // Default: the canonical paper three.
        assert_eq!(
            Scenario::table2().policies(),
            earlyreg_core::PAPER_POLICIES.to_vec()
        );
        let scenario = Scenario::parse("p", "policies = conv, oracle").unwrap();
        assert_eq!(
            scenario.policies(),
            vec![ReleasePolicy::Conventional, ReleasePolicy::Oracle]
        );
        // An unknown policy name fails with the registered ids enumerated.
        let error = Scenario::parse("p", "policies = conv, bogus").unwrap_err();
        assert!(error.contains("unknown policy 'bogus'"), "{error}");
        for id in earlyreg_core::registry::ids() {
            assert!(error.contains(id), "error must list '{id}': {error}");
        }
    }

    #[test]
    fn scenario_workloads_parse_against_the_registry() {
        // Default: the paper's Table 3 ten.
        let default = Scenario::table2().workload_ids();
        assert_eq!(default.len(), 10);
        assert!(default.contains(&"swim") && !default.contains(&"matmul"));
        // Aliases and case canonicalise at parse time.
        let scenario = Scenario::parse("w", "workloads = MATMUL, qsort, swim").unwrap();
        assert_eq!(scenario.workload_ids(), vec!["matmul", "quicksort", "swim"]);
        // An unknown workload name fails with the registered ids enumerated.
        let error = Scenario::parse("w", "workloads = swim, bogus").unwrap_err();
        assert!(error.contains("unknown workload 'bogus'"), "{error}");
        assert!(error.starts_with("line 1:"), "{error}");
        for id in workloads_registry::ids() {
            assert!(error.contains(id), "error must list '{id}': {error}");
        }
    }

    #[test]
    fn scenario_parse_rejects_bad_input() {
        assert!(Scenario::parse("x", "nonsense").is_err());
        assert!(Scenario::parse("x", "ros_size = lots").is_err());
        // A machine that fails validation is rejected at parse time.
        assert!(Scenario::parse("x", "gshare_bits = 60").is_err());
    }

    #[test]
    fn scenario_parse_unknown_key_error_lists_valid_keys() {
        let error = Scenario::parse("x", "bogus_key = 3").unwrap_err();
        assert!(error.contains("unknown key 'bogus_key'"), "{error}");
        for key in SCENARIO_KEYS {
            assert!(error.contains(key), "error must list '{key}': {error}");
        }
    }
}
