//! Figure 3 — number of allocated registers in the Empty / Ready / Idle
//! states under conventional renaming.
//!
//! Machine: the Table 2 processor with a tight 96int + 96FP register file
//! (L = 32, N = 128), conventional release.  For integer programs the paper
//! reports the breakdown of the *integer* file, for FP programs the *FP*
//! file; the idle bars inflate the useful (empty + ready) occupancy by 45.8 %
//! for the integer codes and 16.8 % for the FP codes.

use crate::config::ExperimentOptions;
use crate::metrics::arithmetic_mean;
use crate::report::{fmt, fmt_pct, TextTable};
use crate::runner::{cross_points, run_sweep};
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::{suite, WorkloadClass};
use serde::{Deserialize, Serialize};

/// Register file size used by Figure 3.
pub const FIG03_REGISTERS: usize = 96;

/// Occupancy breakdown for one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig03Row {
    /// Benchmark name.
    pub workload: String,
    /// Benchmark group.
    pub class: WorkloadClass,
    /// Average number of registers in the Empty state.
    pub empty: f64,
    /// Average number of registers in the Ready state.
    pub ready: f64,
    /// Average number of registers in the Idle state.
    pub idle: f64,
}

impl Fig03Row {
    /// Average allocated registers.
    pub fn allocated(&self) -> f64 {
        self.empty + self.ready + self.idle
    }

    /// How much the idle registers inflate the useful occupancy.
    pub fn idle_overhead(&self) -> f64 {
        let useful = self.empty + self.ready;
        if useful <= 0.0 {
            0.0
        } else {
            self.idle / useful
        }
    }
}

/// Full Figure 3 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig03Result {
    /// Per-benchmark rows (integer then FP, suite order).
    pub rows: Vec<Fig03Row>,
    /// Arithmetic-mean idle overhead of the integer group (paper: 45.8 %).
    pub int_idle_overhead: f64,
    /// Arithmetic-mean idle overhead of the FP group (paper: 16.8 %).
    pub fp_idle_overhead: f64,
}

impl Fig03Result {
    /// Arithmetic-mean row over one group.
    pub fn amean(&self, class: WorkloadClass) -> Fig03Row {
        let group: Vec<&Fig03Row> = self.rows.iter().filter(|r| r.class == class).collect();
        Fig03Row {
            workload: "Amean".to_string(),
            class,
            empty: arithmetic_mean(&group.iter().map(|r| r.empty).collect::<Vec<_>>()),
            ready: arithmetic_mean(&group.iter().map(|r| r.ready).collect::<Vec<_>>()),
            idle: arithmetic_mean(&group.iter().map(|r| r.idle).collect::<Vec<_>>()),
        }
    }
}

/// Run the Figure 3 experiment.
pub fn run(options: &ExperimentOptions) -> Fig03Result {
    let workloads = suite(options.scale);
    let points = cross_points(
        &workloads,
        &[ReleasePolicy::Conventional],
        &[FIG03_REGISTERS],
    );
    let results = run_sweep(options, points);

    let rows: Vec<Fig03Row> = results
        .iter()
        .map(|r| {
            // Integer programs are measured on the integer file, FP programs
            // on the FP file (as in the paper's two panels).
            let occ = match r.point.class {
                WorkloadClass::Int => &r.stats.occupancy_int,
                WorkloadClass::Fp => &r.stats.occupancy_fp,
            };
            Fig03Row {
                workload: r.point.workload.to_string(),
                class: r.point.class,
                empty: occ.avg_empty(),
                ready: occ.avg_ready(),
                idle: occ.avg_idle(),
            }
        })
        .collect();

    let result = Fig03Result {
        int_idle_overhead: 0.0,
        fp_idle_overhead: 0.0,
        rows,
    };
    let int_amean = result.amean(WorkloadClass::Int);
    let fp_amean = result.amean(WorkloadClass::Fp);
    Fig03Result {
        int_idle_overhead: int_amean.idle_overhead(),
        fp_idle_overhead: fp_amean.idle_overhead(),
        ..result
    }
}

/// Render the Figure 3 table.
pub fn render(result: &Fig03Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 3 — allocated registers by state (conventional renaming, {FIG03_REGISTERS}int+{FIG03_REGISTERS}fp)\n\n"
    ));
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        let mut table = TextTable::new([
            "benchmark",
            "empty",
            "ready",
            "idle",
            "allocated",
            "idle/(e+r)",
        ]);
        for row in result.rows.iter().filter(|r| r.class == class) {
            table.row([
                row.workload.clone(),
                fmt(row.empty, 1),
                fmt(row.ready, 1),
                fmt(row.idle, 1),
                fmt(row.allocated(), 1),
                fmt_pct(row.idle_overhead()),
            ]);
        }
        let amean = result.amean(class);
        table.row([
            "Amean".to_string(),
            fmt(amean.empty, 1),
            fmt(amean.ready, 1),
            fmt(amean.idle, 1),
            fmt(amean.allocated(), 1),
            fmt_pct(amean.idle_overhead()),
        ]);
        out.push_str(&format!(
            "{} registers ({} programs)\n",
            class.label(),
            class.label()
        ));
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(&format!(
        "paper reference: idle registers inflate useful occupancy by +45.8% (int) and +16.8% (fp)\n\
         measured:        {} (int) and {} (fp)\n",
        fmt_pct(result.int_idle_overhead),
        fmt_pct(result.fp_idle_overhead)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn fig03_smoke_run_produces_sane_occupancy() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 30_000,
        };
        let result = run(&options);
        assert_eq!(result.rows.len(), 10);
        for row in &result.rows {
            assert!(
                row.allocated() >= 31.0,
                "{}: allocated {}",
                row.workload,
                row.allocated()
            );
            assert!(row.allocated() <= FIG03_REGISTERS as f64 + 0.5);
            assert!(row.idle >= 0.0);
        }
        // Conventional renaming always wastes some registers as idle.
        assert!(result.int_idle_overhead > 0.0);
        assert!(result.fp_idle_overhead > 0.0);
        let text = render(&result);
        assert!(text.contains("Amean"));
        assert!(text.contains("compress"));
        assert!(text.contains("hydro2d"));
    }
}
