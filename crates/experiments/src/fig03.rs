//! Figure 3 — number of allocated registers in the Empty / Ready / Idle
//! states under conventional renaming.
//!
//! Machine: the Table 2 processor with a tight 96int + 96FP register file
//! (L = 32, N = 128), conventional release.  For integer programs the paper
//! reports the breakdown of the *integer* file, for FP programs the *FP*
//! file; the idle bars inflate the useful (empty + ready) occupancy by 45.8 %
//! for the integer codes and 16.8 % for the FP codes.

use crate::config::ExperimentOptions;
use crate::context;
use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::metrics::arithmetic_mean;
use crate::report::{fmt, fmt_pct, NamedTable, Report, TextTable};
use crate::runner::RunResult;
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::WorkloadClass;
use serde::{Deserialize, Serialize};

/// Register file size used by Figure 3.
pub const FIG03_REGISTERS: usize = 96;

/// Occupancy breakdown for one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig03Row {
    /// Benchmark name.
    pub workload: String,
    /// Benchmark group.
    pub class: WorkloadClass,
    /// Average number of registers in the Empty state.
    pub empty: f64,
    /// Average number of registers in the Ready state.
    pub ready: f64,
    /// Average number of registers in the Idle state.
    pub idle: f64,
}

impl Fig03Row {
    /// Average allocated registers.
    pub fn allocated(&self) -> f64 {
        self.empty + self.ready + self.idle
    }

    /// How much the idle registers inflate the useful occupancy.
    pub fn idle_overhead(&self) -> f64 {
        let useful = self.empty + self.ready;
        if useful <= 0.0 {
            0.0
        } else {
            self.idle / useful
        }
    }
}

/// Full Figure 3 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig03Result {
    /// Per-benchmark rows (sorted by benchmark name).
    pub rows: Vec<Fig03Row>,
    /// Arithmetic-mean idle overhead of the integer group (paper: 45.8 %).
    pub int_idle_overhead: f64,
    /// Arithmetic-mean idle overhead of the FP group (paper: 16.8 %).
    pub fp_idle_overhead: f64,
}

impl Fig03Result {
    /// Arithmetic-mean row over one group.
    pub fn amean(&self, class: WorkloadClass) -> Fig03Row {
        let group: Vec<&Fig03Row> = self.rows.iter().filter(|r| r.class == class).collect();
        Fig03Row {
            workload: "Amean".to_string(),
            class,
            empty: arithmetic_mean(&group.iter().map(|r| r.empty).collect::<Vec<_>>()),
            ready: arithmetic_mean(&group.iter().map(|r| r.ready).collect::<Vec<_>>()),
            idle: arithmetic_mean(&group.iter().map(|r| r.idle).collect::<Vec<_>>()),
        }
    }
}

/// The points Figure 3 needs: every workload, conventional release, 96+96.
pub fn plan(ctx: &PlanContext) -> Vec<PlannedPoint> {
    ctx.cross(&[ReleasePolicy::Conventional], &[FIG03_REGISTERS])
}

/// Summarise raw sweep results into the Figure 3 data.
pub fn summarise(raw: &[RunResult]) -> Fig03Result {
    let mut raw: Vec<&RunResult> = raw.iter().collect();
    raw.sort_by_key(|r| r.point);
    let rows: Vec<Fig03Row> = raw
        .iter()
        .map(|r| {
            // Integer programs are measured on the integer file, FP programs
            // on the FP file (as in the paper's two panels).
            let occ = match r.point.class {
                WorkloadClass::Int => &r.stats.occupancy_int,
                WorkloadClass::Fp => &r.stats.occupancy_fp,
            };
            Fig03Row {
                workload: r.point.workload.to_string(),
                class: r.point.class,
                empty: occ.avg_empty(),
                ready: occ.avg_ready(),
                idle: occ.avg_idle(),
            }
        })
        .collect();

    let result = Fig03Result {
        int_idle_overhead: 0.0,
        fp_idle_overhead: 0.0,
        rows,
    };
    let int_amean = result.amean(WorkloadClass::Int);
    let fp_amean = result.amean(WorkloadClass::Fp);
    Fig03Result {
        int_idle_overhead: int_amean.idle_overhead(),
        fp_idle_overhead: fp_amean.idle_overhead(),
        ..result
    }
}

/// Run the Figure 3 experiment standalone (engine path, no disk cache).
pub fn run(options: &ExperimentOptions) -> Fig03Result {
    let ctx = PlanContext::new(*options, crate::config::Scenario::table2());
    let plan = plan(&ctx);
    let results = crate::engine::simulate(&ctx, &plan);
    summarise(&results.collect(&plan))
}

/// One occupancy table per benchmark group.
pub fn tables(result: &Fig03Result) -> Vec<NamedTable> {
    [WorkloadClass::Int, WorkloadClass::Fp]
        .into_iter()
        .map(|class| {
            let mut table = TextTable::new([
                "benchmark",
                "empty",
                "ready",
                "idle",
                "allocated",
                "idle/(e+r)",
            ]);
            for row in result
                .rows
                .iter()
                .filter(|r| r.class == class)
                .chain(std::iter::once(&result.amean(class)))
            {
                table.row([
                    row.workload.clone(),
                    fmt(row.empty, 1),
                    fmt(row.ready, 1),
                    fmt(row.idle, 1),
                    fmt(row.allocated(), 1),
                    fmt_pct(row.idle_overhead()),
                ]);
            }
            NamedTable::new(
                match class {
                    WorkloadClass::Int => "int",
                    WorkloadClass::Fp => "fp",
                },
                table,
            )
        })
        .collect()
}

/// Render the Figure 3 table.
pub fn render(result: &Fig03Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 3 — allocated registers by state (conventional renaming, {FIG03_REGISTERS}int+{FIG03_REGISTERS}fp)\n\n"
    ));
    for (class, table) in [WorkloadClass::Int, WorkloadClass::Fp]
        .into_iter()
        .zip(tables(result))
    {
        out.push_str(&format!(
            "{} registers ({} programs)\n",
            class.label(),
            class.label()
        ));
        out.push_str(&table.table.render());
        out.push('\n');
    }
    out.push_str(&format!(
        "paper reference: idle registers inflate useful occupancy by +45.8% (int) and +16.8% (fp)\n\
         measured:        {} (int) and {} (fp)\n",
        fmt_pct(result.int_idle_overhead),
        fmt_pct(result.fp_idle_overhead)
    ));
    out
}

/// The Figure 3 experiment.
pub struct Fig03;

impl Experiment for Fig03 {
    fn id(&self) -> &'static str {
        "fig03"
    }

    fn title(&self) -> &'static str {
        "Figure 3 — Empty/Ready/Idle register occupancy under conventional renaming"
    }

    fn plan(&self, ctx: &PlanContext) -> Vec<PlannedPoint> {
        plan(ctx)
    }

    fn render(&self, ctx: &PlanContext, results: &ResultSet) -> Report {
        let result = summarise(&results.collect(&plan(ctx)));
        let mut text = context::render_table2(FIG03_REGISTERS, FIG03_REGISTERS);
        text.push('\n');
        text.push_str(&render(&result));
        Report {
            experiment: self.id(),
            title: self.title(),
            text,
            tables: tables(&result),
            data: serde::Serialize::to_value(&result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn fig03_smoke_run_produces_sane_occupancy() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 30_000,
        };
        let result = run(&options);
        assert_eq!(result.rows.len(), 10);
        for row in &result.rows {
            assert!(
                row.allocated() >= 31.0,
                "{}: allocated {}",
                row.workload,
                row.allocated()
            );
            assert!(row.allocated() <= FIG03_REGISTERS as f64 + 0.5);
            assert!(row.idle >= 0.0);
        }
        // Rows come back sorted by benchmark name.
        assert!(result
            .rows
            .windows(2)
            .all(|w| w[0].workload <= w[1].workload));
        // Conventional renaming always wastes some registers as idle.
        assert!(result.int_idle_overhead > 0.0);
        assert!(result.fp_idle_overhead > 0.0);
        let text = render(&result);
        assert!(text.contains("Amean"));
        assert!(text.contains("compress"));
        assert!(text.contains("hydro2d"));
        assert_eq!(tables(&result).len(), 2);
    }
}
