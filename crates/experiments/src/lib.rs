//! # earlyreg-experiments
//!
//! The declarative experiment engine that regenerates every table and figure
//! of *"Hardware Schemes for Early Register Release"* (ICPP 2002):
//!
//! | experiment id | paper item | content |
//! |---------------|------------|---------|
//! | `table1`      | Table 1    | commercial processors with merged register files |
//! | `table3`      | Table 3    | benchmarks and their synthetic substitutes |
//! | `fig03`       | Figure 3   | Empty/Ready/Idle occupancy under conventional renaming |
//! | `sec33`       | Section 3.3 | basic-mechanism speedups at 64/48/40 registers |
//! | `fig09`       | Figure 9   | LUs Table vs register file access time & energy |
//! | `sec44`       | Section 4.4 | energy balance and storage cost |
//! | `fig10`       | Figure 10  | per-benchmark IPC at 48+48 registers |
//! | `fig11`       | Figure 11  | harmonic-mean IPC vs register file size |
//! | `table4`      | Table 4    | register file sizes giving equal IPC |
//! | `ablation`    | —          | design-choice ablation (reuse, speculation depth, Release Queue) |
//!
//! Each module implements the [`engine::Experiment`] trait — an id, a title,
//! a `plan()` of simulation points and a `render()` into a multi-format
//! [`report::Report`] — plus standalone `run(...)`/`render(...)` functions.
//! The [`engine`] collects the union of the requested experiments' points,
//! dedups them, simulates each distinct point exactly once on the parallel
//! [`runner`] and backs the sweep with the content-addressed [`cache`], so
//! overlapping experiments and repeated runs are near-free.  The
//! `earlyreg-exp` binary exposes all of it on the command line; the
//! historical per-experiment binaries remain as shims.

pub mod ablation;
pub mod cache;
pub mod config;
pub mod context;
pub mod engine;
pub mod fig03;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod sec33;
pub mod sec44;
pub mod table4;

pub use cache::{CacheKey, PointCache, CACHE_VERSION};
pub use config::{ExperimentOptions, Scenario, FIG11_SIZES};
pub use engine::{
    registry, CacheResolver, Experiment, PlanContext, PlannedPoint, PointResolver, ResolveStats,
    ResultSet, RunSummary, WorkloadSet,
};
pub use metrics::{arithmetic_mean, harmonic_mean, interpolate_equal_ipc, speedup};
pub use report::{Artifact, Format, NamedTable, Report};
pub use runner::{run_point, run_sweep, RunPoint, RunResult};
