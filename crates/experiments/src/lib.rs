//! # earlyreg-experiments
//!
//! The experiment harness that regenerates every table and figure of
//! *"Hardware Schemes for Early Register Release"* (ICPP 2002):
//!
//! | module      | paper item | content |
//! |-------------|------------|---------|
//! | [`context`] | Tables 1 & 3 | static context tables |
//! | [`fig03`]   | Figure 3   | Empty/Ready/Idle occupancy under conventional renaming |
//! | [`sec33`]   | Section 3.3 | basic-mechanism speedups at 64/48/40 registers |
//! | [`fig09`]   | Figure 9   | LUs Table vs register file access time & energy |
//! | [`sec44`]   | Section 4.4 | energy balance and storage cost |
//! | [`fig10`]   | Figure 10  | per-benchmark IPC at 48+48 registers |
//! | [`fig11`]   | Figure 11  | harmonic-mean IPC vs register file size |
//! | [`table4`]  | Table 4    | register file sizes giving equal IPC |
//! | [`ablation`]| —          | design-choice ablation (reuse, speculation depth, Release Queue) |
//!
//! Each module exposes a `run(...)` function returning a serialisable result
//! plus a `render(...)` function producing the text table the corresponding
//! binary prints.  The heavy lifting (cycle-level simulation of every
//! (workload, policy, register-file size) point) is done by [`runner`], which
//! distributes the points over worker threads.

pub mod ablation;
pub mod config;
pub mod context;
pub mod fig03;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod sec33;
pub mod sec44;
pub mod table4;

pub use config::{ExperimentOptions, FIG11_SIZES};
pub use metrics::{arithmetic_mean, harmonic_mean, interpolate_equal_ipc, speedup};
pub use runner::{run_point, run_sweep, RunPoint, RunResult};
