//! Figure 10 — per-benchmark IPC for a very tight 48int + 48FP register file
//! under the conventional, basic and extended policies, plus the per-group
//! harmonic means.
//!
//! Paper reference points: for FP codes the basic mechanism gains ≈ 6 % and
//! the extended ≈ 8 % over conventional; for integer codes basic is ≈ neutral
//! and extended gains ≈ 5 %.

use crate::config::ExperimentOptions;
use crate::context;
use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::metrics::{harmonic_mean, speedup};
use crate::report::{fmt, fmt_pct, NamedTable, Report, TextTable};
use crate::runner::RunResult;
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::WorkloadClass;
use serde::{Deserialize, Serialize};

/// Register file size of Figure 10.
pub const FIG10_REGISTERS: usize = 48;

/// IPC of one benchmark under the three policies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Benchmark name.
    pub workload: String,
    /// Benchmark group.
    pub class: WorkloadClass,
    /// IPC under conventional release.
    pub conv: f64,
    /// IPC under the basic mechanism.
    pub basic: f64,
    /// IPC under the extended mechanism.
    pub extended: f64,
}

/// Full Figure 10 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Per-benchmark rows (suite order).
    pub rows: Vec<Fig10Row>,
}

impl Fig10Result {
    /// Harmonic-mean IPC of a group under a policy.
    pub fn hmean(&self, class: WorkloadClass, policy: ReleasePolicy) -> f64 {
        let values: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| match policy {
                ReleasePolicy::Conventional => r.conv,
                ReleasePolicy::Basic => r.basic,
                ReleasePolicy::Extended => r.extended,
            })
            .collect();
        harmonic_mean(&values)
    }

    /// Speedup of a policy over conventional for a group (harmonic means).
    pub fn group_speedup(&self, class: WorkloadClass, policy: ReleasePolicy) -> f64 {
        speedup(
            self.hmean(class, policy),
            self.hmean(class, ReleasePolicy::Conventional),
        )
    }
}

fn ipc_from(results: &[RunResult], workload: &str, policy: ReleasePolicy) -> f64 {
    results
        .iter()
        .find(|r| r.point.workload == workload && r.point.policy == policy)
        .map(|r| r.ipc())
        .unwrap_or(0.0)
}

/// The points Figure 10 needs: every workload, every policy, 48+48.
pub fn plan(ctx: &PlanContext) -> Vec<PlannedPoint> {
    ctx.cross(&ReleasePolicy::ALL, &[FIG10_REGISTERS])
}

/// Summarise raw sweep results (plan order, i.e. suite order) into rows.
pub fn summarise(raw: &[RunResult]) -> Fig10Result {
    // One row per workload, keeping the first-appearance (suite) order.
    let mut names: Vec<(&'static str, WorkloadClass)> = Vec::new();
    for r in raw {
        if !names.iter().any(|(n, _)| *n == r.point.workload) {
            names.push((r.point.workload, r.point.class));
        }
    }
    let rows = names
        .into_iter()
        .map(|(workload, class)| Fig10Row {
            workload: workload.to_string(),
            class,
            conv: ipc_from(raw, workload, ReleasePolicy::Conventional),
            basic: ipc_from(raw, workload, ReleasePolicy::Basic),
            extended: ipc_from(raw, workload, ReleasePolicy::Extended),
        })
        .collect();
    Fig10Result { rows }
}

/// Run the Figure 10 experiment standalone (engine path, no disk cache).
pub fn run(options: &ExperimentOptions) -> Fig10Result {
    let ctx = PlanContext::new(*options, crate::config::Scenario::table2());
    let plan = plan(&ctx);
    let results = crate::engine::simulate(&ctx, &plan);
    summarise(&results.collect(&plan))
}

/// One IPC table per benchmark group.
pub fn tables(result: &Fig10Result) -> Vec<NamedTable> {
    [WorkloadClass::Int, WorkloadClass::Fp]
        .into_iter()
        .map(|class| {
            let mut table = TextTable::new([
                "benchmark",
                "conv",
                "basic",
                "extended",
                "basic/conv",
                "ext/conv",
            ]);
            for row in result.rows.iter().filter(|r| r.class == class) {
                table.row([
                    row.workload.clone(),
                    fmt(row.conv, 3),
                    fmt(row.basic, 3),
                    fmt(row.extended, 3),
                    fmt_pct(speedup(row.basic, row.conv)),
                    fmt_pct(speedup(row.extended, row.conv)),
                ]);
            }
            table.row([
                "Hm".to_string(),
                fmt(result.hmean(class, ReleasePolicy::Conventional), 3),
                fmt(result.hmean(class, ReleasePolicy::Basic), 3),
                fmt(result.hmean(class, ReleasePolicy::Extended), 3),
                fmt_pct(result.group_speedup(class, ReleasePolicy::Basic)),
                fmt_pct(result.group_speedup(class, ReleasePolicy::Extended)),
            ]);
            NamedTable::new(
                match class {
                    WorkloadClass::Int => "int",
                    WorkloadClass::Fp => "fp",
                },
                table,
            )
        })
        .collect()
}

/// Render the Figure 10 table.
pub fn render(result: &Fig10Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 10 — IPC with a {FIG10_REGISTERS}int+{FIG10_REGISTERS}fp register file\n\n"
    ));
    for (class, table) in [WorkloadClass::Int, WorkloadClass::Fp]
        .into_iter()
        .zip(tables(result))
    {
        out.push_str(&format!("{} programs\n", class.label()));
        out.push_str(&table.table.render());
        out.push('\n');
    }
    out.push_str(
        "paper reference (48+48): FP basic ≈ +6%, FP extended ≈ +8%, \
         integer basic ≈ +0%, integer extended ≈ +5% over conventional\n",
    );
    out
}

/// The Figure 10 experiment.
pub struct Fig10;

impl Experiment for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }

    fn title(&self) -> &'static str {
        "Figure 10 — per-benchmark IPC at 48int+48fp registers"
    }

    fn plan(&self, ctx: &PlanContext) -> Vec<PlannedPoint> {
        plan(ctx)
    }

    fn render(&self, ctx: &PlanContext, results: &ResultSet) -> Report {
        let result = summarise(&results.collect(&plan(ctx)));
        let mut text = context::render_table2(FIG10_REGISTERS, FIG10_REGISTERS);
        text.push('\n');
        text.push_str(&render(&result));
        Report {
            experiment: self.id(),
            title: self.title(),
            text,
            tables: tables(&result),
            data: serde::Serialize::to_value(&result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn fig10_smoke_run_preserves_policy_ordering() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 30_000,
        };
        let result = run(&options);
        assert_eq!(result.rows.len(), 10);
        // Rows keep the suite order: the five integer programs first.
        assert_eq!(result.rows[0].workload, "compress");
        assert_eq!(result.rows[5].workload, "mgrid");
        for row in &result.rows {
            assert!(row.conv > 0.0, "{} has zero conventional IPC", row.workload);
            // Early release must never hurt by more than simulation noise.
            assert!(
                row.basic >= row.conv * 0.97,
                "{}: basic {} vs conv {}",
                row.workload,
                row.basic,
                row.conv
            );
            assert!(
                row.extended >= row.conv * 0.97,
                "{}: ext {} vs conv {}",
                row.workload,
                row.extended,
                row.conv
            );
        }
        // At 48 registers the FP group must benefit from the extended scheme.
        assert!(result.group_speedup(WorkloadClass::Fp, ReleasePolicy::Extended) > 0.0);
        let text = render(&result);
        assert!(text.contains("Hm"));
        assert!(text.contains("ext/conv"));
    }
}
