//! Figure 10 — per-benchmark IPC for a very tight 48int + 48FP register file
//! under the compared release policies, plus the per-group harmonic means.
//!
//! The compared set comes from the scenario ([`Scenario::policies`]); the
//! default is the paper's canonical three (conventional / basic / extended),
//! and any registered scheme — `oracle`, `counter`, future ones — joins the
//! table via `policies = ...` with no code change here.
//!
//! Paper reference points: for FP codes the basic mechanism gains ≈ 6 % and
//! the extended ≈ 8 % over conventional; for integer codes basic is ≈ neutral
//! and extended gains ≈ 5 %.

use crate::config::ExperimentOptions;
use crate::context;
use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::metrics::{harmonic_mean, speedup};
use crate::report::{
    policy_comparison_headers, policy_comparison_row, NamedTable, Report, TextTable,
};
use crate::runner::RunResult;
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::WorkloadClass;
use serde::{Deserialize, Serialize};

/// Register file size of Figure 10.
pub const FIG10_REGISTERS: usize = 48;

/// IPC of one benchmark under every compared policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Benchmark name.
    pub workload: String,
    /// Benchmark group.
    pub class: WorkloadClass,
    /// IPC per policy, parallel to [`Fig10Result::policies`].
    pub ipc: Vec<f64>,
}

/// Full Figure 10 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Registry ids of the compared policies, in column order; the first is
    /// the speedup baseline.
    pub policies: Vec<String>,
    /// Per-benchmark rows (suite order).
    pub rows: Vec<Fig10Row>,
}

impl Fig10Result {
    fn policy_column(&self, policy: &str) -> Option<usize> {
        self.policies.iter().position(|p| p == policy)
    }

    /// IPC of one benchmark under one policy (by registry id).
    pub fn ipc(&self, workload: &str, policy: &str) -> Option<f64> {
        let column = self.policy_column(policy)?;
        self.rows
            .iter()
            .find(|r| r.workload == workload)
            .and_then(|r| r.ipc.get(column).copied())
    }

    /// Harmonic-mean IPC of a group under a policy (by registry id).
    pub fn hmean(&self, class: WorkloadClass, policy: &str) -> f64 {
        let Some(column) = self.policy_column(policy) else {
            return 0.0;
        };
        let values: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.class == class)
            .filter_map(|r| r.ipc.get(column).copied())
            .collect();
        harmonic_mean(&values)
    }

    /// Speedup of a policy over the baseline (first) policy for a group
    /// (harmonic means).
    pub fn group_speedup(&self, class: WorkloadClass, policy: &str) -> f64 {
        let Some(baseline) = self.policies.first() else {
            return 0.0;
        };
        speedup(self.hmean(class, policy), self.hmean(class, baseline))
    }
}

fn ipc_from(results: &[RunResult], workload: &str, policy: ReleasePolicy) -> f64 {
    results
        .iter()
        .find(|r| r.point.workload == workload && r.point.policy == policy)
        .map(|r| r.ipc())
        .unwrap_or(0.0)
}

/// The points Figure 10 needs: every workload, every compared policy, 48+48.
pub fn plan(ctx: &PlanContext) -> Vec<PlannedPoint> {
    ctx.cross(&ctx.scenario.policies(), &[FIG10_REGISTERS])
}

/// Summarise raw sweep results (plan order, i.e. suite order) into rows.
pub fn summarise(raw: &[RunResult], policies: &[ReleasePolicy]) -> Fig10Result {
    // One row per workload, keeping the first-appearance (suite) order.
    let mut names: Vec<(&'static str, WorkloadClass)> = Vec::new();
    for r in raw {
        if !names.iter().any(|(n, _)| *n == r.point.workload) {
            names.push((r.point.workload, r.point.class));
        }
    }
    let rows = names
        .into_iter()
        .map(|(workload, class)| Fig10Row {
            workload: workload.to_string(),
            class,
            ipc: policies
                .iter()
                .map(|&policy| ipc_from(raw, workload, policy))
                .collect(),
        })
        .collect();
    Fig10Result {
        policies: policies.iter().map(|p| p.label().to_string()).collect(),
        rows,
    }
}

/// Run the Figure 10 experiment standalone (engine path, no disk cache).
pub fn run(options: &ExperimentOptions) -> Fig10Result {
    let ctx = PlanContext::new(*options, crate::config::Scenario::table2());
    let plan = plan(&ctx);
    let results = crate::engine::simulate(&ctx, &plan);
    summarise(&results.collect(&plan), &ctx.scenario.policies())
}

/// One IPC table per benchmark group, with one column per compared policy
/// and one speedup column per non-baseline policy.
pub fn tables(result: &Fig10Result) -> Vec<NamedTable> {
    [WorkloadClass::Int, WorkloadClass::Fp]
        .into_iter()
        .map(|class| {
            let mut table =
                TextTable::new(policy_comparison_headers("benchmark", &result.policies));
            for row in result.rows.iter().filter(|r| r.class == class) {
                table.row(policy_comparison_row(row.workload.clone(), &row.ipc));
            }
            let hmeans: Vec<f64> = result
                .policies
                .iter()
                .map(|p| result.hmean(class, p))
                .collect();
            table.row(policy_comparison_row("Hm".to_string(), &hmeans));
            NamedTable::new(
                match class {
                    WorkloadClass::Int => "int",
                    WorkloadClass::Fp => "fp",
                },
                table,
            )
        })
        .collect()
}

/// Render the Figure 10 table.
pub fn render(result: &Fig10Result) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 10 — IPC with a {FIG10_REGISTERS}int+{FIG10_REGISTERS}fp register file \
         (policies: {})\n\n",
        result.policies.join(", ")
    ));
    for (class, table) in [WorkloadClass::Int, WorkloadClass::Fp]
        .into_iter()
        .zip(tables(result))
    {
        out.push_str(&format!("{} programs\n", class.label()));
        out.push_str(&table.table.render());
        out.push('\n');
    }
    out.push_str(
        "paper reference (48+48): FP basic ≈ +6%, FP extended ≈ +8%, \
         integer basic ≈ +0%, integer extended ≈ +5% over conventional\n",
    );
    out
}

/// The Figure 10 experiment.
pub struct Fig10;

impl Experiment for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }

    fn title(&self) -> &'static str {
        "Figure 10 — per-benchmark IPC at 48int+48fp registers"
    }

    fn plan(&self, ctx: &PlanContext) -> Vec<PlannedPoint> {
        plan(ctx)
    }

    fn render(&self, ctx: &PlanContext, results: &ResultSet) -> Report {
        let result = summarise(&results.collect(&plan(ctx)), &ctx.scenario.policies());
        let mut text = context::render_table2(FIG10_REGISTERS, FIG10_REGISTERS);
        text.push('\n');
        text.push_str(&render(&result));
        Report {
            experiment: self.id(),
            title: self.title(),
            text,
            tables: tables(&result),
            data: serde::Serialize::to_value(&result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn fig10_smoke_run_preserves_policy_ordering() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 30_000,
        };
        let result = run(&options);
        assert_eq!(result.policies, ["conv", "basic", "extended"]);
        assert_eq!(result.rows.len(), 10);
        // Rows keep the suite order: the five integer programs first.
        assert_eq!(result.rows[0].workload, "compress");
        assert_eq!(result.rows[5].workload, "mgrid");
        for row in &result.rows {
            let conv = result.ipc(&row.workload, "conv").unwrap();
            let basic = result.ipc(&row.workload, "basic").unwrap();
            let extended = result.ipc(&row.workload, "extended").unwrap();
            assert!(conv > 0.0, "{} has zero conventional IPC", row.workload);
            // Early release must never hurt by more than simulation noise.
            assert!(
                basic >= conv * 0.97,
                "{}: basic {basic} vs conv {conv}",
                row.workload,
            );
            assert!(
                extended >= conv * 0.97,
                "{}: ext {extended} vs conv {conv}",
                row.workload,
            );
        }
        // At 48 registers the FP group must benefit from the extended scheme.
        assert!(result.group_speedup(WorkloadClass::Fp, "extended") > 0.0);
        let text = render(&result);
        assert!(text.contains("Hm"));
        assert!(text.contains("extended/conv"));
    }
}
