//! Parallel execution of simulation points.
//!
//! Every experiment reduces to a set of *(workload, policy, register-file
//! size)* points, each of which is an independent cycle-level simulation.
//! [`run_parallel`] distributes any list of jobs over a pool of scoped worker
//! threads through a shared atomic work index and writes each result into the
//! slot of its input item, so **output order never depends on thread
//! interleaving**.  [`run_sweep`] builds on it: it sorts the points by their
//! [`RunPoint`] ordering, drops duplicates and simulates each point once on
//! the Table 2 machine.  (The experiment engine in [`crate::engine`] goes
//! further: it plans the union of several experiments' points, dedups them
//! across experiments and backs them with an on-disk cache.)

use crate::config::ExperimentOptions;
use earlyreg_core::ReleasePolicy;
use earlyreg_sim::{
    decoded_trace_for, lanes_disabled, replay_disabled, LaneGroup, LaneStats, MachineConfig,
    RunLimits, SimPool, SimStats, Simulator, TRACE_SLACK,
};
use earlyreg_workloads::{shared_suite, Workload, WorkloadClass};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One simulation point.
///
/// The derived `Ord` — (workload, class, policy, int regs, fp regs) in field
/// order — is the canonical deterministic ordering of sweep results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct RunPoint {
    /// Workload name (must exist in the suite).
    pub workload: &'static str,
    /// Integer or FP benchmark group.
    pub class: WorkloadClass,
    /// Release policy.
    pub policy: ReleasePolicy,
    /// Integer physical registers.
    pub phys_int: usize,
    /// FP physical registers.
    pub phys_fp: usize,
}

/// Statistics of one simulated point.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// The point that was simulated.
    pub point: RunPoint,
    /// Full simulator statistics.
    pub stats: SimStats,
}

impl RunResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Simulate a single point under an explicit machine configuration (the
/// experiment engine uses this for scenario overrides and ablation variants).
///
/// Uses the decode-once trace-replay front-end by default: the program's
/// [`DecodedTrace`](earlyreg_isa::DecodedTrace) is captured once (memoized
/// per shared `Arc<Program>`) and every policy/config lane replays it,
/// skipping per-instruction decode and value re-computation while keeping
/// `SimStats` bit-identical (pinned by `tests/stats_equivalence.rs`).  Set
/// `EARLYREG_NO_REPLAY=1` to force the live front-end for debugging.
pub fn run_configured_point(
    workload: &Workload,
    point: RunPoint,
    config: MachineConfig,
    max_instructions: u64,
) -> RunResult {
    let mut sim = if replay_disabled() {
        Simulator::new(config, workload.program.clone())
    } else {
        let trace = decoded_trace_for(
            &workload.program,
            max_instructions.saturating_add(TRACE_SLACK),
        );
        Simulator::with_replay(config, workload.program.clone(), trace)
    };
    let stats = sim.run(RunLimits::instructions(max_instructions));
    assert_eq!(
        stats.oracle_violations, 0,
        "{} under {:?} with {}int+{}fp registers read a discarded value",
        point.workload, point.policy, point.phys_int, point.phys_fp
    );
    RunResult { point, stats }
}

/// Simulate a single point on the Table 2 machine.
pub fn run_point(workload: &Workload, point: RunPoint, max_instructions: u64) -> RunResult {
    let config = MachineConfig::icpp02(point.policy, point.phys_int, point.phys_fp);
    run_configured_point(workload, point, config, max_instructions)
}

/// Helper: build the canonical cross product of points for the given
/// workloads, policies and (symmetric) register file sizes.
pub fn cross_points(
    workloads: &[Workload],
    policies: &[ReleasePolicy],
    sizes: &[usize],
) -> Vec<RunPoint> {
    let mut points = Vec::with_capacity(workloads.len() * policies.len() * sizes.len());
    for w in workloads {
        for &policy in policies {
            for &size in sizes {
                points.push(RunPoint {
                    workload: w.name(),
                    class: w.class(),
                    policy,
                    phys_int: size,
                    phys_fp: size,
                });
            }
        }
    }
    points
}

/// Run `job` over every item on `threads` scoped worker threads and return
/// the results **in input order**: each worker writes its result into the
/// slot of the item it claimed, so the output is deterministic regardless of
/// how the threads interleave.
pub fn run_parallel<T, R, F>(threads: usize, items: &[T], job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_parallel_with(threads, items, || (), |item, ()| job(item))
}

/// As [`run_parallel`], with a per-worker scratch value built by `init`:
/// each worker thread constructs its own and threads it through every job it
/// claims.  The sweep path uses this to carry a [`SimPool`] across the
/// workload groups a worker processes, so simulator carcasses are recycled
/// instead of re-allocated.  With one thread (or one item) the jobs run
/// inline on the calling thread — no spawn, and thread-local state such as
/// the phase profiler keeps accumulating where the caller can read it.
pub fn run_parallel_with<T, R, S, F, I>(threads: usize, items: &[T], init: I, job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut S) -> R + Sync,
    I: Fn() -> S + Sync,
{
    // Nothing to do: don't pay for a thread spawn.  The serving path hits
    // this on every fully-warm request (zero cache misses to simulate).
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        let mut scratch = init();
        return items.iter().map(|item| job(item, &mut scratch)).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next_item = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let index = next_item.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else {
                        break;
                    };
                    let result = job(item, &mut scratch);
                    *slots[index].lock().expect("worker panicked") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker panicked")
                .expect("every slot is filled")
        })
        .collect()
}

/// Execution-order permutation for batched scheduling: indices grouped by
/// `key`, **largest group first** (ties broken by first occurrence, so the
/// order is deterministic), stable within each group.
///
/// Grouping same-key items consecutively keeps each workload's shared
/// decoded trace and kill plan hot while its policy/config lanes replay it;
/// putting the largest groups first is longest-processing-time-first
/// scheduling, which minimises the idle tail when the groups are distributed
/// over worker threads.
pub fn batch_order<T, K: PartialEq>(items: &[T], key: impl Fn(&T) -> K) -> Vec<usize> {
    let mut groups: Vec<(K, Vec<usize>)> = Vec::new();
    for (index, item) in items.iter().enumerate() {
        let k = key(item);
        match groups.iter_mut().find(|(existing, _)| *existing == k) {
            Some((_, members)) => members.push(index),
            None => groups.push((k, vec![index])),
        }
    }
    groups.sort_by_key(|(_, members)| (usize::MAX - members.len(), members[0]));
    groups
        .into_iter()
        .flat_map(|(_, members)| members)
        .collect()
}

/// Widest lane group the sweep scheduler builds: enough for every policy ×
/// a few register-file sizes of one workload, small enough that the group's
/// combined private state stays cache-friendly.
pub const MAX_LANE_WIDTH: usize = 16;

/// Run every point in parallel and return the results sorted by [`RunPoint`]
/// (duplicates removed), independent of worker-thread interleaving.
///
/// Points are *executed* in batched order — same-workload lanes
/// consecutively, largest workload groups first (see [`batch_order`]) — but
/// the *returned* results are always point-sorted.
///
/// Same-workload points are stepped as a [`LaneGroup`] over one shared
/// program/trace/front-end table, with simulator allocations pooled across
/// groups (see [`crate::runner::run_sweep_with_lane_stats`] for the
/// occupancy statistics).  Set `EARLYREG_NO_LANES=1` to fall back to
/// sequential per-point stepping, or `EARLYREG_NO_REPLAY=1` to also force
/// the live front-end; results are bit-identical either way (pinned by
/// `tests/stats_equivalence.rs`).
pub fn run_sweep(options: &ExperimentOptions, points: Vec<RunPoint>) -> Vec<RunResult> {
    run_sweep_with_lane_stats(options, points).0
}

/// As [`run_sweep`], also returning the aggregated lane-group occupancy
/// statistics (zeroed when the lane engine is disabled or unusable).
pub fn run_sweep_with_lane_stats(
    options: &ExperimentOptions,
    mut points: Vec<RunPoint>,
) -> (Vec<RunResult>, LaneStats) {
    points.sort_unstable();
    points.dedup();
    let batched: Vec<RunPoint> = batch_order(&points, |p| p.workload)
        .into_iter()
        .map(|i| points[i])
        .collect();
    let workloads = shared_suite(options.scale);
    let threads = options.effective_threads();

    if lanes_disabled() {
        let mut results = run_parallel(threads, &batched, |&point| {
            let workload = workload_in(&workloads, point.workload);
            run_point(workload, point, options.max_instructions)
        });
        results.sort_unstable_by_key(|r| r.point);
        return (results, LaneStats::default());
    }

    // One work item per lane group: consecutive same-workload points,
    // chunked at the lane-width cap.  Each worker thread carries a SimPool
    // across the groups it claims.
    let groups: Vec<&[RunPoint]> = batched
        .chunk_by(|a, b| a.workload == b.workload)
        .flat_map(|g| g.chunks(MAX_LANE_WIDTH))
        .collect();
    let group_results = run_parallel_with(threads, &groups, SimPool::new, |group, pool| {
        run_lane_group(&workloads, group, options.max_instructions, pool)
    });

    let mut lane_stats = LaneStats::default();
    let mut results = Vec::with_capacity(points.len());
    for (group_result, group_stats) in group_results {
        results.extend(group_result);
        lane_stats.merge(&group_stats);
    }
    results.sort_unstable_by_key(|r| r.point);
    (results, lane_stats)
}

fn workload_in<'a>(workloads: &'a [Workload], name: &str) -> &'a Workload {
    workloads
        .iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("unknown workload '{name}'"))
}

/// Step one group of same-workload points in lockstep over their shared
/// program and decoded trace, drawing simulator allocations from `pool`.
fn run_lane_group(
    workloads: &[Workload],
    group: &[RunPoint],
    max_instructions: u64,
    pool: &mut SimPool,
) -> (Vec<RunResult>, LaneStats) {
    let workload = workload_in(workloads, group[0].workload);
    // With `EARLYREG_NO_REPLAY` set the lanes run the live front-end —
    // permanently detached from a trace but still grouped and pooled.
    let trace = if replay_disabled() {
        None
    } else {
        Some(decoded_trace_for(
            &workload.program,
            max_instructions.saturating_add(TRACE_SLACK),
        ))
    };
    let mut lanes = LaneGroup::with_default_chunk();
    for &point in group {
        let config = MachineConfig::icpp02(point.policy, point.phys_int, point.phys_fp);
        let sim = match &trace {
            Some(trace) => {
                Simulator::with_replay_pooled(config, workload.program.clone(), trace.clone(), pool)
            }
            None => Simulator::new_pooled(config, workload.program.clone(), pool),
        };
        lanes.push(sim, RunLimits::instructions(max_instructions));
    }
    let (lane_results, lane_stats) = lanes.into_results(pool);
    let results = group
        .iter()
        .zip(lane_results)
        .map(|(&point, stats)| {
            assert_eq!(
                stats.oracle_violations, 0,
                "{} under {:?} with {}int+{}fp registers read a discarded value",
                point.workload, point.policy, point.phys_int, point.phys_fp
            );
            RunResult { point, stats }
        })
        .collect();
    (results, lane_stats)
}

/// Select, from a result set, the IPC of a specific point.
pub fn ipc_of(
    results: &[RunResult],
    workload: &str,
    policy: ReleasePolicy,
    phys_int: usize,
) -> Option<f64> {
    results
        .iter()
        .find(|r| {
            r.point.workload == workload && r.point.policy == policy && r.point.phys_int == phys_int
        })
        .map(|r| r.ipc())
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn cross_points_covers_the_product() {
        let workloads = earlyreg_workloads::suite(Scale::Smoke);
        let points = cross_points(&workloads, &[ReleasePolicy::Conventional], &[48, 64]);
        // every registered workload (15) x 1 policy x 2 sizes.
        assert_eq!(points.len(), workloads.len() * 2);
        assert_eq!(points.len(), 30);
    }

    #[test]
    fn run_parallel_preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 3, 8] {
            let results = run_parallel(threads, &items, |&i| i * 2);
            assert_eq!(results, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_parallel_handles_empty_input() {
        let results = run_parallel(4, &[] as &[usize], |&i| i);
        assert!(results.is_empty());
    }

    #[test]
    fn sweep_runs_points_in_parallel_and_sorts_results() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 20_000,
        };
        let workloads = earlyreg_workloads::suite(Scale::Smoke);
        let subset: Vec<Workload> = workloads
            .into_iter()
            .filter(|w| w.name() == "perl" || w.name() == "swim")
            .collect();
        let points = cross_points(
            &subset,
            &[ReleasePolicy::Conventional, ReleasePolicy::Extended],
            &[48],
        );
        let results = run_sweep(&options, points);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.stats.committed > 1_000));
        assert!(results.windows(2).all(|w| w[0].point < w[1].point));
        assert!(ipc_of(&results, "perl", ReleasePolicy::Extended, 48).is_some());
        assert!(ipc_of(&results, "perl", ReleasePolicy::Basic, 48).is_none());
    }

    #[test]
    fn sweep_ordering_is_deterministic_across_thread_counts() {
        // Shuffle the points (reversed + interleaved), run with different
        // worker counts, and demand the exact same point-sorted output every
        // time — the regression guard for deterministic sweep ordering.
        let workloads = earlyreg_workloads::suite(Scale::Smoke);
        let subset: Vec<Workload> = workloads
            .into_iter()
            .filter(|w| w.name() == "compress" || w.name() == "mgrid")
            .collect();
        let mut points = cross_points(
            &subset,
            &[ReleasePolicy::Extended, ReleasePolicy::Conventional],
            &[48, 40],
        );
        points.reverse();
        // Duplicates must collapse instead of being simulated twice.
        let mut with_dupes = points.clone();
        with_dupes.extend(points.iter().copied());

        let mut reference: Option<Vec<(RunPoint, u64)>> = None;
        for threads in [1, 2, 5] {
            let options = ExperimentOptions {
                scale: Scale::Smoke,
                threads,
                max_instructions: 10_000,
            };
            let results = run_sweep(&options, with_dupes.clone());
            assert_eq!(results.len(), 8, "duplicates must be dropped");
            let mut sorted = results.iter().map(|r| r.point).collect::<Vec<_>>();
            sorted.sort_unstable();
            assert_eq!(
                results.iter().map(|r| r.point).collect::<Vec<_>>(),
                sorted,
                "results must come back point-sorted"
            );
            let key: Vec<(RunPoint, u64)> =
                results.iter().map(|r| (r.point, r.stats.cycles)).collect();
            match &reference {
                None => reference = Some(key),
                Some(expected) => assert_eq!(&key, expected, "threads={threads}"),
            }
        }
    }
}
