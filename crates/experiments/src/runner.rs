//! Parallel execution of simulation points.
//!
//! Every experiment reduces to a set of *(workload, policy, register-file
//! size)* points, each of which is an independent cycle-level simulation.
//! [`run_sweep`] builds the workload suite once, distributes the points over
//! a pool of scoped worker threads through a shared atomic work index and
//! collects the per-point statistics.

use crate::config::ExperimentOptions;
use earlyreg_core::ReleasePolicy;
use earlyreg_sim::{MachineConfig, RunLimits, SimStats, Simulator};
use earlyreg_workloads::{suite, Workload, WorkloadClass};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One simulation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct RunPoint {
    /// Workload name (must exist in the suite).
    pub workload: &'static str,
    /// Integer or FP benchmark group.
    pub class: WorkloadClass,
    /// Release policy.
    pub policy: ReleasePolicy,
    /// Integer physical registers.
    pub phys_int: usize,
    /// FP physical registers.
    pub phys_fp: usize,
}

/// Statistics of one simulated point.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// The point that was simulated.
    pub point: RunPoint,
    /// Full simulator statistics.
    pub stats: SimStats,
}

impl RunResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Simulate a single point on the Table 2 machine.
pub fn run_point(workload: &Workload, point: RunPoint, max_instructions: u64) -> RunResult {
    let config = MachineConfig::icpp02(point.policy, point.phys_int, point.phys_fp);
    let mut sim = Simulator::new(config, workload.program.clone());
    let stats = sim.run(RunLimits::instructions(max_instructions));
    assert_eq!(
        stats.oracle_violations, 0,
        "{} under {:?} with {}int+{}fp registers read a discarded value",
        point.workload, point.policy, point.phys_int, point.phys_fp
    );
    RunResult { point, stats }
}

/// Helper: build the canonical cross product of points for the given
/// workloads, policies and (symmetric) register file sizes.
pub fn cross_points(
    workloads: &[Workload],
    policies: &[ReleasePolicy],
    sizes: &[usize],
) -> Vec<RunPoint> {
    let mut points = Vec::with_capacity(workloads.len() * policies.len() * sizes.len());
    for w in workloads {
        for &policy in policies {
            for &size in sizes {
                points.push(RunPoint {
                    workload: w.name(),
                    class: w.class(),
                    policy,
                    phys_int: size,
                    phys_fp: size,
                });
            }
        }
    }
    points
}

/// Run every point in parallel and return the results sorted by
/// (workload, policy, size) for deterministic reporting.
pub fn run_sweep(options: &ExperimentOptions, points: Vec<RunPoint>) -> Vec<RunResult> {
    let workloads = suite(options.scale);
    let results = Mutex::new(Vec::with_capacity(points.len()));
    let next_point = AtomicUsize::new(0);

    let threads = options.effective_threads().max(1);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next_point = &next_point;
            let points = &points;
            let results = &results;
            let workloads = &workloads;
            let max_instructions = options.max_instructions;
            scope.spawn(move || loop {
                let index = next_point.fetch_add(1, Ordering::Relaxed);
                let Some(&point) = points.get(index) else {
                    break;
                };
                let workload = workloads
                    .iter()
                    .find(|w| w.name() == point.workload)
                    .unwrap_or_else(|| panic!("unknown workload '{}'", point.workload));
                let result = run_point(workload, point, max_instructions);
                results.lock().expect("worker panicked").push(result);
            });
        }
    });

    let mut results = results.into_inner().expect("worker panicked");
    results.sort_by_key(|r| {
        (
            r.point.workload,
            r.point.policy.label(),
            r.point.phys_int,
            r.point.phys_fp,
        )
    });
    results
}

/// Select, from a result set, the IPC of a specific point.
pub fn ipc_of(
    results: &[RunResult],
    workload: &str,
    policy: ReleasePolicy,
    phys_int: usize,
) -> Option<f64> {
    results
        .iter()
        .find(|r| {
            r.point.workload == workload && r.point.policy == policy && r.point.phys_int == phys_int
        })
        .map(|r| r.ipc())
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn cross_points_covers_the_product() {
        let workloads = suite(Scale::Smoke);
        let points = cross_points(&workloads, &[ReleasePolicy::Conventional], &[48, 64]);
        // 10 workloads x 1 policy x 2 sizes.
        assert_eq!(points.len(), 20);
    }

    #[test]
    fn sweep_runs_points_in_parallel_and_sorts_results() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 20_000,
        };
        let workloads = suite(Scale::Smoke);
        let subset: Vec<Workload> = workloads
            .into_iter()
            .filter(|w| w.name() == "perl" || w.name() == "swim")
            .collect();
        let points = cross_points(
            &subset,
            &[ReleasePolicy::Conventional, ReleasePolicy::Extended],
            &[48],
        );
        let results = run_sweep(&options, points);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.stats.committed > 1_000));
        assert!(results.windows(2).all(|w| {
            (w[0].point.workload, w[0].point.policy.label())
                <= (w[1].point.workload, w[1].point.policy.label())
        }));
        assert!(ipc_of(&results, "perl", ReleasePolicy::Extended, 48).is_some());
        assert!(ipc_of(&results, "perl", ReleasePolicy::Basic, 48).is_none());
    }
}
