//! Section 3.3 — speedups of the *basic* mechanism alone.
//!
//! Paper reference points (average speedup of basic over conventional):
//!
//! * 64int + 64FP registers: ≈ 3 % for FP codes, negligible for integer codes;
//! * 48int + 48FP registers: ≈ 6 % for FP codes, negligible for integer codes;
//! * 40int + 40FP registers: ≈ 9 % for FP codes and ≈ 5 % for integer codes.

use crate::config::ExperimentOptions;
use crate::engine::{Experiment, PlanContext, PlannedPoint, ResultSet};
use crate::metrics::{harmonic_mean, speedup};
use crate::report::{fmt, fmt_pct, NamedTable, Report, TextTable};
use crate::runner::RunResult;
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::WorkloadClass;
use serde::{Deserialize, Serialize};

/// Register sizes examined in Section 3.3.
pub const SEC33_SIZES: [usize; 3] = [40, 48, 64];

/// Speedup of the basic mechanism for one group at one size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sec33Point {
    /// Benchmark group.
    pub class: WorkloadClass,
    /// Registers per class.
    pub size: usize,
    /// Harmonic-mean IPC under conventional release.
    pub conv_ipc: f64,
    /// Harmonic-mean IPC under the basic mechanism.
    pub basic_ipc: f64,
}

impl Sec33Point {
    /// Speedup of basic over conventional.
    pub fn speedup(&self) -> f64 {
        speedup(self.basic_ipc, self.conv_ipc)
    }
}

/// Full Section 3.3 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec33Result {
    /// All (group, size) points.
    pub points: Vec<Sec33Point>,
}

impl Sec33Result {
    /// Look up a point.
    pub fn point(&self, class: WorkloadClass, size: usize) -> Option<&Sec33Point> {
        self.points
            .iter()
            .find(|p| p.class == class && p.size == size)
    }
}

fn group_hmean(raw: &[RunResult], class: WorkloadClass, policy: ReleasePolicy, size: usize) -> f64 {
    let values: Vec<f64> = raw
        .iter()
        .filter(|r| r.point.class == class && r.point.policy == policy && r.point.phys_int == size)
        .map(|r| r.ipc())
        .collect();
    harmonic_mean(&values)
}

/// The points Section 3.3 needs: conventional + basic at the three sizes.
pub fn plan(ctx: &PlanContext) -> Vec<PlannedPoint> {
    ctx.cross(
        &[ReleasePolicy::Conventional, ReleasePolicy::Basic],
        &SEC33_SIZES,
    )
}

/// Summarise raw sweep results into the Section 3.3 data.
pub fn summarise(raw: &[RunResult]) -> Sec33Result {
    let mut raw: Vec<RunResult> = raw.to_vec();
    raw.sort_by_key(|r| r.point);
    let mut out = Vec::new();
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        for &size in &SEC33_SIZES {
            out.push(Sec33Point {
                class,
                size,
                conv_ipc: group_hmean(&raw, class, ReleasePolicy::Conventional, size),
                basic_ipc: group_hmean(&raw, class, ReleasePolicy::Basic, size),
            });
        }
    }
    Sec33Result { points: out }
}

/// Run the Section 3.3 experiment standalone (engine path, no disk cache).
pub fn run(options: &ExperimentOptions) -> Sec33Result {
    let ctx = PlanContext::new(*options, crate::config::Scenario::table2());
    let plan = plan(&ctx);
    let results = crate::engine::simulate(&ctx, &plan);
    summarise(&results.collect(&plan))
}

/// The Section 3.3 speedup table.
pub fn tables(result: &Sec33Result) -> Vec<NamedTable> {
    let mut table = TextTable::new(["group", "registers", "conv IPC", "basic IPC", "speedup"]);
    for point in &result.points {
        table.row([
            point.class.label().to_string(),
            point.size.to_string(),
            fmt(point.conv_ipc, 3),
            fmt(point.basic_ipc, 3),
            fmt_pct(point.speedup()),
        ]);
    }
    vec![NamedTable::new("speedups", table)]
}

/// Render the Section 3.3 table.
pub fn render(result: &Sec33Result) -> String {
    let mut out = String::new();
    out.push_str("Section 3.3 — speedup of the basic mechanism over conventional release\n\n");
    out.push_str(&tables(result)[0].table.render());
    out.push_str(
        "\npaper reference: FP ≈ +3% at 64, ≈ +6% at 48, ≈ +9% at 40 registers; \
         integer ≈ +0% at 64/48 and ≈ +5% at 40 registers\n",
    );
    out
}

/// The Section 3.3 experiment.
pub struct Sec33;

impl Experiment for Sec33 {
    fn id(&self) -> &'static str {
        "sec33"
    }

    fn title(&self) -> &'static str {
        "Section 3.3 — basic-mechanism speedups at 64/48/40 registers"
    }

    fn plan(&self, ctx: &PlanContext) -> Vec<PlannedPoint> {
        plan(ctx)
    }

    fn render(&self, ctx: &PlanContext, results: &ResultSet) -> Report {
        let result = summarise(&results.collect(&plan(ctx)));
        Report {
            experiment: self.id(),
            title: self.title(),
            text: render(&result),
            tables: tables(&result),
            data: serde::Serialize::to_value(&result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn sec33_smoke_run_is_consistent() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 25_000,
        };
        let result = run(&options);
        assert_eq!(result.points.len(), 6);
        for point in &result.points {
            assert!(point.conv_ipc > 0.0);
            assert!(point.basic_ipc >= point.conv_ipc * 0.97, "{point:?}");
        }
        // Tighter files cannot be faster than looser ones under the same policy.
        let fp40 = result.point(WorkloadClass::Fp, 40).unwrap().conv_ipc;
        let fp64 = result.point(WorkloadClass::Fp, 64).unwrap().conv_ipc;
        assert!(fp64 >= fp40 * 0.98);
        assert!(render(&result).contains("speedup"));
    }
}
