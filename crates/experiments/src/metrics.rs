//! Metric helpers: means, speedups, equal-IPC interpolation.

/// Harmonic mean — the paper reports `Hm` over each benchmark group in
/// Figures 10 and 11.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum_inv: f64 = values.iter().map(|v| 1.0 / v.max(1e-12)).sum();
    values.len() as f64 / sum_inv
}

/// Arithmetic mean — Figure 3 reports `Amean` of the occupancy breakdown.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Relative speedup of `new` over `baseline` (0.05 = 5 % faster).
pub fn speedup(new: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        new / baseline - 1.0
    }
}

/// Find the register-file size at which the `candidate` IPC curve reaches
/// `target_ipc`, by linear interpolation over `(size, ipc)` samples sorted by
/// size.  Returns `None` when the curve never reaches the target.
///
/// This is how Table 4 ("register file sizes giving equal IPC") is derived:
/// the target is the conventional policy's IPC at some size, and the curve is
/// the extended policy's IPC over the swept sizes.
pub fn interpolate_equal_ipc(curve: &[(usize, f64)], target_ipc: f64) -> Option<f64> {
    if curve.is_empty() {
        return None;
    }
    let mut sorted: Vec<(usize, f64)> = curve.to_vec();
    sorted.sort_by_key(|&(size, _)| size);
    if sorted[0].1 >= target_ipc {
        return Some(sorted[0].0 as f64);
    }
    for window in sorted.windows(2) {
        let (s0, v0) = window[0];
        let (s1, v1) = window[1];
        if v0 < target_ipc && v1 >= target_ipc {
            if (v1 - v0).abs() < 1e-12 {
                return Some(s1 as f64);
            }
            let t = (target_ipc - v0) / (v1 - v0);
            return Some(s0 as f64 + t * (s1 - s0) as f64);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        // Harmonic mean is dominated by the slowest member.
        let hm = harmonic_mean(&[1.0, 4.0]);
        assert!((hm - 1.6).abs() < 1e-12);
        assert!(hm < arithmetic_mean(&[1.0, 4.0]));
    }

    #[test]
    fn arithmetic_mean_basics() {
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_definition() {
        assert!((speedup(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((speedup(0.9, 1.0) + 0.1).abs() < 1e-12);
        assert_eq!(speedup(1.0, 0.0), 0.0);
    }

    #[test]
    fn equal_ipc_interpolation() {
        let curve = [(40, 1.0), (48, 1.5), (56, 2.0), (64, 2.1)];
        // Exactly at a sample.
        assert!((interpolate_equal_ipc(&curve, 1.5).unwrap() - 48.0).abs() < 1e-9);
        // Between samples: 1.75 is halfway between 48 and 56.
        assert!((interpolate_equal_ipc(&curve, 1.75).unwrap() - 52.0).abs() < 1e-9);
        // Below the smallest sample.
        assert_eq!(interpolate_equal_ipc(&curve, 0.5), Some(40.0));
        // Unreachable target.
        assert_eq!(interpolate_equal_ipc(&curve, 3.0), None);
        // Empty curve.
        assert_eq!(interpolate_equal_ipc(&[], 1.0), None);
    }

    #[test]
    fn equal_ipc_handles_unsorted_input() {
        let curve = [(56, 2.0), (40, 1.0), (48, 1.5)];
        assert!((interpolate_equal_ipc(&curve, 1.75).unwrap() - 52.0).abs() < 1e-9);
    }
}
