//! Concurrency guarantees of the on-disk point cache: any number of threads
//! may race `store`/`load` on the same digest, and every load observes
//! either a miss or a complete, bit-identical entry — never a torn file and
//! never an error.

use earlyreg_core::ReleasePolicy;
use earlyreg_experiments::cache::{CacheKey, PointCache, CACHE_VERSION};
use earlyreg_experiments::runner::RunPoint;
use earlyreg_sim::SimStats;
use earlyreg_workloads::WorkloadClass;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("earlyreg-cache-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(workload: &'static str, max_instructions: u64) -> CacheKey {
    CacheKey::new(
        RunPoint {
            workload,
            class: WorkloadClass::Fp,
            policy: ReleasePolicy::Extended,
            phys_int: 48,
            phys_fp: 48,
        },
        "{\"fetch_width\":8}".to_string(),
        0x5151_5151,
        max_instructions,
    )
}

fn stats(cycles: u64) -> SimStats {
    SimStats {
        cycles,
        committed: cycles * 3 + 1,
        halted: true,
        ..Default::default()
    }
}

/// N threads hammer the same digest with stores and loads; every load is a
/// miss or the exact stored statistics.
#[test]
fn racing_store_and_load_on_one_digest_never_observe_a_torn_entry() {
    let dir = temp_dir("same");
    let cache = PointCache::new(&dir);
    let key = key("swim", 4242);
    let expected = stats(77);
    let loads_hit = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for thread in 0..8 {
            let (cache, key, expected, loads_hit) = (&cache, &key, &expected, &loads_hit);
            scope.spawn(move || {
                for _ in 0..50 {
                    if thread % 2 == 0 {
                        cache.store(key, expected).expect("store succeeds");
                    }
                    match cache.load(key) {
                        None => {}
                        Some(loaded) => {
                            assert_eq!(&loaded, expected, "a hit must be bit-identical");
                            loads_hit.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    assert!(
        loads_hit.load(Ordering::Relaxed) > 0,
        "at least some loads must have hit"
    );
    // Exactly one entry file, no leftover temp files.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(entries.len(), 1, "unexpected files: {entries:?}");
    assert!(entries[0].ends_with(".json"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Threads storing distinct keys do not interfere; every key loads back its
/// own statistics.
#[test]
fn racing_stores_of_distinct_keys_all_land() {
    let dir = temp_dir("distinct");
    let cache = PointCache::new(&dir);
    let keys: Vec<(CacheKey, SimStats)> = (0..16)
        .map(|i| (key("gcc", 1000 + i), stats(100 + i)))
        .collect();

    std::thread::scope(|scope| {
        for (key, stats) in &keys {
            scope.spawn(|| {
                cache.store(key, stats).expect("store succeeds");
            });
        }
    });

    for (key, stats) in &keys {
        assert_eq!(cache.load(key).as_ref(), Some(stats));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Unreadable, unparsable or key-mismatched entries — e.g. what a pre-rename
/// crash or a foreign tool could leave behind — degrade to misses, never to
/// errors, and a subsequent store repairs them.
#[test]
fn damaged_entries_degrade_to_a_miss_and_are_repairable() {
    let dir = temp_dir("damaged");
    let cache = PointCache::new(&dir);
    let key = key("li", 9);
    let expected = stats(5);

    cache.store(&key, &expected).unwrap();
    let path = cache.entry_path(&key);

    // Truncated mid-write (torn) content.
    std::fs::write(&path, "{\"key\":\"{\\\"ver").unwrap();
    assert_eq!(cache.load(&key), None);

    // Valid JSON under the wrong key (e.g. a digest collision).
    std::fs::write(&path, "{\"key\":\"something else\",\"stats\":{}}").unwrap();
    assert_eq!(cache.load(&key), None);

    // A store over the damaged entry restores it.
    cache.store(&key, &expected).unwrap();
    assert_eq!(cache.load(&key), Some(expected));
    let _ = std::fs::remove_dir_all(&dir);
}

/// An entry written under an older `CACHE_VERSION` is invisible to current
/// keys: the digest differs, and even a forced collision fails key
/// verification.
#[test]
fn entries_from_an_older_cache_version_are_misses() {
    let dir = temp_dir("version");
    let cache = PointCache::new(&dir);
    let current = key("perl", 123);
    let mut old = current.clone();
    old.version = CACHE_VERSION - 1;

    cache.store(&old, &stats(1)).unwrap();
    assert_ne!(old.digest(), current.digest());
    assert_eq!(cache.load(&current), None, "old entries must never serve");

    // Force the collision: copy the old entry onto the current digest's
    // path.  Key verification still rejects it.
    std::fs::copy(cache.entry_path(&old), cache.entry_path(&current)).unwrap();
    assert_eq!(cache.load(&current), None);
    let _ = std::fs::remove_dir_all(&dir);
}
