//! Instruction set definition.
//!
//! The opcode set is chosen so that every operation maps directly onto one of
//! the functional-unit classes of the paper's Table 2:
//!
//! | Table 2 entry              | latency | [`FuClass`]      | opcodes |
//! |----------------------------|---------|------------------|---------|
//! | 8 × simple int             | 1       | [`FuClass::IntAlu`] | ALU, shifts, compares, moves, branches, jumps |
//! | 4 × int mult               | 7       | [`FuClass::IntMul`] | `IMul`, `IDiv` |
//! | 6 × simple FP              | 4       | [`FuClass::FpAdd`]  | `FAdd`, `FSub`, FP compares, conversions |
//! | 4 × FP mult                | 4       | [`FuClass::FpMul`]  | `FMul` |
//! | 4 × FP div                 | 16      | [`FuClass::FpDiv`]  | `FDiv`, `FSqrt` |
//! | 4 × load/store             | cache   | [`FuClass::Mem`]    | loads and stores |
//!
//! Every instruction has at most two register sources, at most one register
//! destination and one immediate, which is all the renaming machinery of the
//! paper needs (the ROS fields in Figure 5 are exactly `r1, r2, rd`).

use crate::reg::{ArchReg, RegClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Condition used by conditional branches.  The comparison is always between
/// two *integer* values (the second operand defaults to zero when `src2` is
/// absent), mirroring classic RISC ISAs where FP comparisons first produce an
/// integer flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Taken when `a == b`.
    Eq,
    /// Taken when `a != b`.
    Ne,
    /// Taken when `a < b` (signed).
    Lt,
    /// Taken when `a >= b` (signed).
    Ge,
    /// Taken when `a <= b` (signed).
    Le,
    /// Taken when `a > b` (signed).
    Gt,
}

impl BranchCond {
    /// Evaluate the condition on two integer operands.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
        }
    }

    /// All conditions (used by generators and property tests).
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Le,
        BranchCond::Gt,
    ];
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchCond::Eq => "eq",
            BranchCond::Ne => "ne",
            BranchCond::Lt => "lt",
            BranchCond::Ge => "ge",
            BranchCond::Le => "le",
            BranchCond::Gt => "gt",
        };
        f.write_str(s)
    }
}

/// Functional-unit class an instruction executes on (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuClass {
    /// Simple integer operations, branches, jumps (1-cycle latency).
    IntAlu,
    /// Integer multiply / divide (7-cycle latency).
    IntMul,
    /// Simple FP: add/sub/compare/convert (4-cycle latency).
    FpAdd,
    /// FP multiply (4-cycle latency).
    FpMul,
    /// FP divide / square root (16-cycle latency).
    FpDiv,
    /// Load/store port (latency determined by the memory hierarchy).
    Mem,
}

impl FuClass {
    /// All classes, for iteration.
    pub const ALL: [FuClass; 6] = [
        FuClass::IntAlu,
        FuClass::IntMul,
        FuClass::FpAdd,
        FuClass::FpMul,
        FuClass::FpDiv,
        FuClass::Mem,
    ];

    /// Dense index for per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuClass::IntAlu => 0,
            FuClass::IntMul => 1,
            FuClass::FpAdd => 2,
            FuClass::FpMul => 3,
            FuClass::FpDiv => 4,
            FuClass::Mem => 5,
        }
    }

    /// Execution latency in cycles used by the paper's Table 2 (memory
    /// operations return 0 here: their latency comes from the cache model).
    #[inline]
    pub fn table2_latency(self) -> u32 {
        match self {
            FuClass::IntAlu => 1,
            FuClass::IntMul => 7,
            FuClass::FpAdd => 4,
            FuClass::FpMul => 4,
            FuClass::FpDiv => 16,
            FuClass::Mem => 0,
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::IntAlu => "int-alu",
            FuClass::IntMul => "int-mul",
            FuClass::FpAdd => "fp-add",
            FuClass::FpMul => "fp-mul",
            FuClass::FpDiv => "fp-div",
            FuClass::Mem => "mem",
        };
        f.write_str(s)
    }
}

/// Operation performed by an instruction.
///
/// Operand conventions (enforced by [`Instruction::validate`]):
///
/// * integer ALU / multiply ops read int sources and write an int dest;
/// * `IAddImm` / `ILoadImm` use the immediate;
/// * FP arithmetic reads FP sources and writes an FP dest;
/// * `FCmpLt` / `FCmpEq` read FP sources and write an **int** dest;
/// * `ItoF` reads an int source, writes an FP dest; `FtoI` the opposite;
/// * loads compute the address as `int(src1) + imm` and write `dst` of the
///   opcode's class; stores read the address from `src1` (int) and the data
///   from `src2` (class per opcode);
/// * branches compare `int(src1)` against `int(src2)` (or zero) and jump to
///   the absolute instruction index `imm`; `Jump` is unconditional;
/// * `Halt` stops the program; `Nop` does nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    // ---- integer ALU (1 cycle) ----
    /// `dst = src1 + src2`
    IAdd,
    /// `dst = src1 - src2`
    ISub,
    /// `dst = src1 & src2`
    IAnd,
    /// `dst = src1 | src2`
    IOr,
    /// `dst = src1 ^ src2`
    IXor,
    /// `dst = src1 << (src2 & 63)`
    IShl,
    /// `dst = src1 >> (src2 & 63)` (arithmetic)
    IShr,
    /// `dst = (src1 < src2) ? 1 : 0`
    ISlt,
    /// `dst = (src1 == src2) ? 1 : 0`
    ISeq,
    /// `dst = src1 + imm`
    IAddImm,
    /// `dst = src1 & imm`
    IAndImm,
    /// `dst = src1 ^ imm` (also used as "move/copy" with imm = 0)
    IXorImm,
    /// `dst = src1 << (imm & 63)`
    IShlImm,
    /// `dst = src1 >> (imm & 63)` (arithmetic)
    IShrImm,
    /// `dst = imm`
    ILoadImm,

    // ---- integer multiply/divide (7 cycles) ----
    /// `dst = src1 * src2` (wrapping)
    IMul,
    /// `dst = src1 / src2` (wrapping; x/0 = 0)
    IDiv,

    // ---- simple FP (4 cycles) ----
    /// `dst = src1 + src2`
    FAdd,
    /// `dst = src1 - src2`
    FSub,
    /// `dst = |src1|`
    FAbs,
    /// `dst = -src1`
    FNeg,
    /// `dst(int) = (src1 < src2) ? 1 : 0`
    FCmpLt,
    /// `dst(int) = (src1 == src2) ? 1 : 0`
    FCmpEq,
    /// `dst(fp) = src1(int) as f64`
    ItoF,
    /// `dst(int) = src1(fp) as i64` (saturating)
    FtoI,
    /// `dst(fp) = imm interpreted as an f64 bit pattern`
    FLoadImm,

    // ---- FP multiply (4 cycles) ----
    /// `dst = src1 * src2`
    FMul,

    // ---- FP divide (16 cycles) ----
    /// `dst = src1 / src2` (x/0 = 0.0)
    FDiv,
    /// `dst = sqrt(|src1|)`
    FSqrt,

    // ---- memory ----
    /// `dst(int) = memory[src1 + imm]`
    LoadInt,
    /// `dst(fp) = memory[src1 + imm]`
    LoadFp,
    /// `memory[src1 + imm] = src2(int)`
    StoreInt,
    /// `memory[src1 + imm] = src2(fp)`
    StoreFp,

    // ---- control ----
    /// Conditional branch to instruction index `imm`.
    Branch(BranchCond),
    /// Unconditional direct jump to instruction index `imm`.
    Jump,
    /// Stop the program.
    Halt,
    /// No operation.
    Nop,
}

impl Opcode {
    /// Every opcode, including all six branch conditions (used by the
    /// assembler's mnemonic table and by property tests).
    pub const ALL: [Opcode; 42] = [
        Opcode::IAdd,
        Opcode::ISub,
        Opcode::IAnd,
        Opcode::IOr,
        Opcode::IXor,
        Opcode::IShl,
        Opcode::IShr,
        Opcode::ISlt,
        Opcode::ISeq,
        Opcode::IAddImm,
        Opcode::IAndImm,
        Opcode::IXorImm,
        Opcode::IShlImm,
        Opcode::IShrImm,
        Opcode::ILoadImm,
        Opcode::IMul,
        Opcode::IDiv,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FAbs,
        Opcode::FNeg,
        Opcode::FCmpLt,
        Opcode::FCmpEq,
        Opcode::ItoF,
        Opcode::FtoI,
        Opcode::FLoadImm,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::FSqrt,
        Opcode::LoadInt,
        Opcode::LoadFp,
        Opcode::StoreInt,
        Opcode::StoreFp,
        Opcode::Branch(BranchCond::Eq),
        Opcode::Branch(BranchCond::Ne),
        Opcode::Branch(BranchCond::Lt),
        Opcode::Branch(BranchCond::Ge),
        Opcode::Branch(BranchCond::Le),
        Opcode::Branch(BranchCond::Gt),
        Opcode::Jump,
        Opcode::Halt,
        Opcode::Nop,
    ];

    /// Functional-unit class of the opcode.
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            IAdd | ISub | IAnd | IOr | IXor | IShl | IShr | ISlt | ISeq | IAddImm | IAndImm
            | IXorImm | IShlImm | IShrImm | ILoadImm | Branch(_) | Jump | Halt | Nop => {
                FuClass::IntAlu
            }
            IMul | IDiv => FuClass::IntMul,
            FAdd | FSub | FAbs | FNeg | FCmpLt | FCmpEq | ItoF | FtoI | FLoadImm => FuClass::FpAdd,
            FMul => FuClass::FpMul,
            FDiv | FSqrt => FuClass::FpDiv,
            LoadInt | LoadFp | StoreInt | StoreFp => FuClass::Mem,
        }
    }

    /// Class of the destination register, if the opcode writes one.
    pub fn dst_class(self) -> Option<RegClass> {
        use Opcode::*;
        match self {
            IAdd | ISub | IAnd | IOr | IXor | IShl | IShr | ISlt | ISeq | IAddImm | IAndImm
            | IXorImm | IShlImm | IShrImm | ILoadImm | IMul | IDiv | FCmpLt | FCmpEq | FtoI
            | LoadInt => Some(RegClass::Int),
            FAdd | FSub | FAbs | FNeg | ItoF | FLoadImm | FMul | FDiv | FSqrt | LoadFp => {
                Some(RegClass::Fp)
            }
            StoreInt | StoreFp | Branch(_) | Jump | Halt | Nop => None,
        }
    }

    /// Classes expected for `src1` and `src2` (None = the operand is unused).
    pub fn src_classes(self) -> (Option<RegClass>, Option<RegClass>) {
        use Opcode::*;
        match self {
            IAdd | ISub | IAnd | IOr | IXor | IShl | IShr | ISlt | ISeq | IMul | IDiv => {
                (Some(RegClass::Int), Some(RegClass::Int))
            }
            IAddImm | IAndImm | IXorImm | IShlImm | IShrImm => (Some(RegClass::Int), None),
            ILoadImm => (None, None),
            FAdd | FSub | FMul | FDiv | FCmpLt | FCmpEq => (Some(RegClass::Fp), Some(RegClass::Fp)),
            FAbs | FNeg | FSqrt | FtoI => (Some(RegClass::Fp), None),
            ItoF => (Some(RegClass::Int), None),
            FLoadImm => (None, None),
            LoadInt | LoadFp => (Some(RegClass::Int), None),
            StoreInt => (Some(RegClass::Int), Some(RegClass::Int)),
            StoreFp => (Some(RegClass::Int), Some(RegClass::Fp)),
            // A branch may compare against zero, in which case src2 is absent;
            // validation treats src2 as optional for branches.
            Branch(_) => (Some(RegClass::Int), Some(RegClass::Int)),
            Jump | Halt | Nop => (None, None),
        }
    }

    /// True for conditional branches.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Branch(_))
    }

    /// True for any control transfer (conditional branch or jump).
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(self, Opcode::Branch(_) | Opcode::Jump)
    }

    /// True for loads.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::LoadInt | Opcode::LoadFp)
    }

    /// True for stores.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::StoreInt | Opcode::StoreFp)
    }

    /// True for memory operations.
    #[inline]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Short mnemonic.
    pub fn mnemonic(self) -> String {
        use Opcode::*;
        match self {
            IAdd => "add".into(),
            ISub => "sub".into(),
            IAnd => "and".into(),
            IOr => "or".into(),
            IXor => "xor".into(),
            IShl => "shl".into(),
            IShr => "shr".into(),
            ISlt => "slt".into(),
            ISeq => "seq".into(),
            IAddImm => "addi".into(),
            IAndImm => "andi".into(),
            IXorImm => "xori".into(),
            IShlImm => "shli".into(),
            IShrImm => "shri".into(),
            ILoadImm => "li".into(),
            IMul => "mul".into(),
            IDiv => "div".into(),
            FAdd => "fadd".into(),
            FSub => "fsub".into(),
            FAbs => "fabs".into(),
            FNeg => "fneg".into(),
            FCmpLt => "fclt".into(),
            FCmpEq => "fceq".into(),
            ItoF => "itof".into(),
            FtoI => "ftoi".into(),
            FLoadImm => "fli".into(),
            FMul => "fmul".into(),
            FDiv => "fdiv".into(),
            FSqrt => "fsqrt".into(),
            LoadInt => "ld".into(),
            LoadFp => "fld".into(),
            StoreInt => "st".into(),
            StoreFp => "fst".into(),
            Branch(c) => format!("b{c}"),
            Jump => "j".into(),
            Halt => "halt".into(),
            Nop => "nop".into(),
        }
    }
}

/// A single machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// First source register, if any.
    pub src1: Option<ArchReg>,
    /// Second source register, if any.
    pub src2: Option<ArchReg>,
    /// Immediate: ALU constant, memory offset, branch/jump target (absolute
    /// instruction index) or raw f64 bits for `FLoadImm`.
    pub imm: i64,
}

impl Instruction {
    /// A no-op instruction.
    pub fn nop() -> Self {
        Instruction {
            op: Opcode::Nop,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        }
    }

    /// A halt instruction.
    pub fn halt() -> Self {
        Instruction {
            op: Opcode::Halt,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        }
    }

    /// Iterate over the source registers that are present.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }

    /// Check operand classes and presence against the opcode contract.
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let (c1, c2) = self.op.src_classes();
        // Destination.
        match (self.op.dst_class(), self.dst) {
            (Some(c), Some(r)) if r.class() != c => {
                return Err(format!(
                    "{}: destination {r} has class {} but the opcode writes {}",
                    self.op.mnemonic(),
                    r.class(),
                    c
                ));
            }
            (Some(_), None) => {
                return Err(format!(
                    "{}: missing destination register",
                    self.op.mnemonic()
                ))
            }
            (None, Some(r)) => {
                return Err(format!(
                    "{}: unexpected destination register {r}",
                    self.op.mnemonic()
                ))
            }
            _ => {}
        }
        // Source 1.
        match (c1, self.src1) {
            (Some(c), Some(r)) if r.class() != c => {
                return Err(format!(
                    "{}: source 1 {r} has class {} but the opcode reads {}",
                    self.op.mnemonic(),
                    r.class(),
                    c
                ));
            }
            (Some(_), None) => {
                return Err(format!("{}: missing source register 1", self.op.mnemonic()))
            }
            (None, Some(r)) => {
                return Err(format!(
                    "{}: unexpected source register 1 {r}",
                    self.op.mnemonic()
                ))
            }
            _ => {}
        }
        // Source 2 — optional for branches (compare against zero).
        match (c2, self.src2) {
            (Some(c), Some(r)) if r.class() != c => {
                return Err(format!(
                    "{}: source 2 {r} has class {} but the opcode reads {}",
                    self.op.mnemonic(),
                    r.class(),
                    c
                ));
            }
            (Some(_), None) if !self.op.is_cond_branch() && !self.op.is_store() => {
                return Err(format!("{}: missing source register 2", self.op.mnemonic()))
            }
            (Some(_), None) if self.op.is_store() => {
                return Err(format!(
                    "{}: store is missing its data register",
                    self.op.mnemonic()
                ))
            }
            (None, Some(r)) => {
                return Err(format!(
                    "{}: unexpected source register 2 {r}",
                    self.op.mnemonic()
                ))
            }
            _ => {}
        }
        Ok(())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op.mnemonic())?;
        let mut parts: Vec<String> = [self.dst, self.src1, self.src2]
            .into_iter()
            .flatten()
            .map(|r| r.to_string())
            .collect();
        if self.imm != 0
            || self.op.is_control()
            || matches!(self.op, Opcode::ILoadImm | Opcode::FLoadImm)
        {
            parts.push(format!("#{}", self.imm));
        }
        if !parts.is_empty() {
            write!(f, " {}", parts.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_class_latencies_match_table2() {
        assert_eq!(FuClass::IntAlu.table2_latency(), 1);
        assert_eq!(FuClass::IntMul.table2_latency(), 7);
        assert_eq!(FuClass::FpAdd.table2_latency(), 4);
        assert_eq!(FuClass::FpMul.table2_latency(), 4);
        assert_eq!(FuClass::FpDiv.table2_latency(), 16);
        assert_eq!(FuClass::Mem.table2_latency(), 0);
    }

    #[test]
    fn opcode_fu_classes() {
        assert_eq!(Opcode::IAdd.fu_class(), FuClass::IntAlu);
        assert_eq!(Opcode::IMul.fu_class(), FuClass::IntMul);
        assert_eq!(Opcode::FAdd.fu_class(), FuClass::FpAdd);
        assert_eq!(Opcode::FMul.fu_class(), FuClass::FpMul);
        assert_eq!(Opcode::FDiv.fu_class(), FuClass::FpDiv);
        assert_eq!(Opcode::LoadFp.fu_class(), FuClass::Mem);
        assert_eq!(Opcode::Branch(BranchCond::Eq).fu_class(), FuClass::IntAlu);
    }

    #[test]
    fn dst_classes() {
        assert_eq!(Opcode::IAdd.dst_class(), Some(RegClass::Int));
        assert_eq!(Opcode::FAdd.dst_class(), Some(RegClass::Fp));
        assert_eq!(Opcode::FCmpLt.dst_class(), Some(RegClass::Int));
        assert_eq!(Opcode::ItoF.dst_class(), Some(RegClass::Fp));
        assert_eq!(Opcode::StoreInt.dst_class(), None);
        assert_eq!(Opcode::Branch(BranchCond::Lt).dst_class(), None);
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(!BranchCond::Eq.eval(3, 4));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(-1, 0));
        assert!(BranchCond::Ge.eval(0, 0));
        assert!(BranchCond::Le.eval(-5, -5));
        assert!(BranchCond::Gt.eval(7, 2));
    }

    #[test]
    fn validate_accepts_well_formed_instruction() {
        let i = Instruction {
            op: Opcode::IAdd,
            dst: Some(ArchReg::int(1)),
            src1: Some(ArchReg::int(2)),
            src2: Some(ArchReg::int(3)),
            imm: 0,
        };
        assert!(i.validate().is_ok());
    }

    #[test]
    fn validate_rejects_class_mismatch() {
        let i = Instruction {
            op: Opcode::IAdd,
            dst: Some(ArchReg::fp(1)),
            src1: Some(ArchReg::int(2)),
            src2: Some(ArchReg::int(3)),
            imm: 0,
        };
        assert!(i.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_dest() {
        let i = Instruction {
            op: Opcode::IAdd,
            dst: None,
            src1: Some(ArchReg::int(2)),
            src2: Some(ArchReg::int(3)),
            imm: 0,
        };
        assert!(i.validate().is_err());
    }

    #[test]
    fn validate_allows_branch_against_zero() {
        let i = Instruction {
            op: Opcode::Branch(BranchCond::Ne),
            dst: None,
            src1: Some(ArchReg::int(4)),
            src2: None,
            imm: 10,
        };
        assert!(i.validate().is_ok());
    }

    #[test]
    fn validate_rejects_store_without_data() {
        let i = Instruction {
            op: Opcode::StoreInt,
            dst: None,
            src1: Some(ArchReg::int(4)),
            src2: None,
            imm: 10,
        };
        assert!(i.validate().is_err());
    }

    #[test]
    fn validate_mixed_class_store() {
        let i = Instruction {
            op: Opcode::StoreFp,
            dst: None,
            src1: Some(ArchReg::int(4)),
            src2: Some(ArchReg::fp(9)),
            imm: 8,
        };
        assert!(i.validate().is_ok());
    }

    #[test]
    fn display_is_reasonable() {
        let i = Instruction {
            op: Opcode::IAddImm,
            dst: Some(ArchReg::int(1)),
            src1: Some(ArchReg::int(2)),
            src2: None,
            imm: 42,
        };
        assert_eq!(i.to_string(), "addi r1, r2, #42");
    }

    #[test]
    fn predicates() {
        assert!(Opcode::Branch(BranchCond::Eq).is_cond_branch());
        assert!(Opcode::Jump.is_control());
        assert!(!Opcode::Jump.is_cond_branch());
        assert!(Opcode::LoadInt.is_load());
        assert!(Opcode::StoreFp.is_store());
        assert!(Opcode::StoreFp.is_mem());
        assert!(!Opcode::IAdd.is_mem());
    }
}
