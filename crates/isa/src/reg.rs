//! Architectural (logical) registers.
//!
//! The paper assumes the MIPS/Alpha-style split of **L = 32 integer** and
//! **32 floating-point** logical registers (Section 2: "MIPS ISA has L=32
//! logical integer registers").  Physical registers are a separate concept
//! and live in `earlyreg-core`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer logical registers (the paper's `L` for the integer file).
pub const NUM_LOGICAL_INT: usize = 32;
/// Number of floating-point logical registers.
pub const NUM_LOGICAL_FP: usize = 32;

/// The two register classes of the machine.
///
/// The paper keeps two independent merged register files (integer and FP),
/// each with its own free list, map table and — for the proposed mechanisms —
/// its own Last-Uses Table.  Everything in this workspace that is keyed by a
/// register therefore also carries its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer registers (`r0..r31`).
    Int,
    /// Floating-point registers (`f0..f31`).
    Fp,
}

impl RegClass {
    /// Both classes, in a fixed order (useful for iterating per-class state).
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];

    /// Number of logical registers in this class.
    #[inline]
    pub fn num_logical(self) -> usize {
        match self {
            RegClass::Int => NUM_LOGICAL_INT,
            RegClass::Fp => NUM_LOGICAL_FP,
        }
    }

    /// Short lowercase name used in reports ("int" / "fp").
    pub fn short_name(self) -> &'static str {
        match self {
            RegClass::Int => "int",
            RegClass::Fp => "fp",
        }
    }

    /// Index (0 = int, 1 = fp) for dense per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// An architectural ("logical") register: a class plus an index inside the
/// class.
///
/// The paper calls these *logical registers* (`rd`, `rs1`, `rs2` in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Create an integer register `r<index>`.
    ///
    /// # Panics
    /// Panics if `index >= NUM_LOGICAL_INT`.
    #[inline]
    pub fn int(index: usize) -> Self {
        assert!(
            index < NUM_LOGICAL_INT,
            "integer register index {index} out of range (max {NUM_LOGICAL_INT})"
        );
        ArchReg {
            class: RegClass::Int,
            index: index as u8,
        }
    }

    /// Create a floating-point register `f<index>`.
    ///
    /// # Panics
    /// Panics if `index >= NUM_LOGICAL_FP`.
    #[inline]
    pub fn fp(index: usize) -> Self {
        assert!(
            index < NUM_LOGICAL_FP,
            "fp register index {index} out of range (max {NUM_LOGICAL_FP})"
        );
        ArchReg {
            class: RegClass::Fp,
            index: index as u8,
        }
    }

    /// Create a register of the given class.
    #[inline]
    pub fn new(class: RegClass, index: usize) -> Self {
        match class {
            RegClass::Int => ArchReg::int(index),
            RegClass::Fp => ArchReg::fp(index),
        }
    }

    /// The register class.
    #[inline]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The index of the register within its class.
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Iterate over all logical registers of a class.
    pub fn all(class: RegClass) -> impl Iterator<Item = ArchReg> {
        (0..class.num_logical()).map(move |i| ArchReg::new(class, i))
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_class_counts() {
        assert_eq!(RegClass::Int.num_logical(), 32);
        assert_eq!(RegClass::Fp.num_logical(), 32);
        assert_eq!(RegClass::ALL.len(), 2);
    }

    #[test]
    fn construct_and_display() {
        let r = ArchReg::int(5);
        assert_eq!(r.class(), RegClass::Int);
        assert_eq!(r.index(), 5);
        assert_eq!(r.to_string(), "r5");

        let f = ArchReg::fp(31);
        assert_eq!(f.class(), RegClass::Fp);
        assert_eq!(f.index(), 31);
        assert_eq!(f.to_string(), "f31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_out_of_range_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_index_out_of_range_panics() {
        let _ = ArchReg::fp(200);
    }

    #[test]
    fn all_iterates_every_register_once() {
        let ints: Vec<_> = ArchReg::all(RegClass::Int).collect();
        assert_eq!(ints.len(), NUM_LOGICAL_INT);
        assert_eq!(ints[0], ArchReg::int(0));
        assert_eq!(ints[31], ArchReg::int(31));
        let fps: Vec<_> = ArchReg::all(RegClass::Fp).collect();
        assert_eq!(fps.len(), NUM_LOGICAL_FP);
    }

    #[test]
    fn ordering_groups_by_class_then_index() {
        assert!(ArchReg::int(31) < ArchReg::fp(0));
        assert!(ArchReg::int(3) < ArchReg::int(4));
    }

    #[test]
    fn class_index_is_dense() {
        assert_eq!(RegClass::Int.index(), 0);
        assert_eq!(RegClass::Fp.index(), 1);
    }
}
