//! # earlyreg-isa
//!
//! A small load/store RISC instruction set used by the reproduction of
//! *"Hardware Schemes for Early Register Release"* (Monreal, Viñals,
//! González, Valero — ICPP 2002).
//!
//! The paper evaluates its mechanisms on a SimpleScalar-derived simulator
//! running SPEC95 Alpha binaries.  Neither the Alpha toolchain nor the SPEC95
//! inputs are available here, so this crate provides the substrate the rest of
//! the reproduction is built on:
//!
//! * a register model with the paper's **32 integer + 32 floating-point
//!   logical registers** ([`reg`]),
//! * a compact RISC instruction set whose operations map one-to-one onto the
//!   functional-unit classes of the paper's Table 2 ([`instr`]),
//! * shared **operational semantics** used both by the architectural emulator
//!   and by the cycle-level simulator's execute stage, so the two can never
//!   drift apart ([`semantics`]),
//! * a [`Program`](program::Program) container plus a structured
//!   [`ProgramBuilder`](builder::ProgramBuilder) used by the synthetic SPEC95
//!   analogues in `earlyreg-workloads`,
//! * a text **assembler/loader** ([`assembler`]) — labels, branches,
//!   loads/stores, data directives and an argument-passing convention — so
//!   real kernels ship as `.asm` files and register as workloads,
//! * an **architectural emulator** ([`emulator`]) that serves as the golden
//!   model: the out-of-order simulator's committed state is checked against it
//!   in the integration tests.
//!
//! The ISA is deliberately minimal — the early-release mechanisms only care
//! about *register dataflow* (definitions, uses, redefinitions), *branches*
//! (speculation) and *latency* (register lifetime), all of which this ISA
//! expresses.

pub mod assembler;
pub mod builder;
pub mod decoded;
pub mod emulator;
pub mod instr;
pub mod program;
pub mod reg;
pub mod semantics;
pub mod trace;

pub use assembler::{assemble, assemble_program, ArgSpec, AsmError, Assembly};
pub use builder::{Label, ProgramBuilder};
pub use decoded::{DecodedTrace, KillEvent, NO_TRACE};
pub use emulator::{ArchState, EmulationResult, Emulator, StepOutcome};
pub use instr::{BranchCond, FuClass, Instruction, Opcode};
pub use program::{Program, ProgramError};
pub use reg::{ArchReg, RegClass, NUM_LOGICAL_FP, NUM_LOGICAL_INT};
