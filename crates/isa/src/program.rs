//! Program container.
//!
//! A [`Program`] is a flat list of instructions (the "text" segment, addressed
//! by instruction index) plus an initial data-memory image (word addressed).
//! Programs are fully static — there is no loader, no relocation and no
//! self-modifying code — which keeps both the emulator and the cycle-level
//! simulator's fetch stage simple and deterministic.

use crate::instr::{Instruction, Opcode};
use crate::reg::RegClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default data-memory size in 64-bit words (1 MiW = 8 MiB), large enough for
/// every synthetic workload in `earlyreg-workloads`.
pub const DEFAULT_MEMORY_WORDS: usize = 1 << 20;

/// Errors detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// An instruction failed operand validation.
    BadInstruction {
        /// Instruction index.
        index: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A control-flow target points outside the program.
    BadTarget {
        /// Instruction index of the branch/jump.
        index: usize,
        /// The out-of-range target.
        target: i64,
    },
    /// The program has no `Halt` instruction (it could never terminate).
    NoHalt,
    /// The initial data image is larger than the requested memory size.
    DataTooLarge {
        /// Words in the initial image.
        data_words: usize,
        /// Total memory words.
        memory_words: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program is empty"),
            ProgramError::BadInstruction { index, reason } => {
                write!(f, "instruction {index} is malformed: {reason}")
            }
            ProgramError::BadTarget { index, target } => {
                write!(f, "instruction {index} has an out-of-range target {target}")
            }
            ProgramError::NoHalt => write!(f, "program has no halt instruction"),
            ProgramError::DataTooLarge {
                data_words,
                memory_words,
            } => write!(
                f,
                "initial data image ({data_words} words) exceeds memory size ({memory_words} words)"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Static footprint statistics of a program (used by workload metadata and
/// reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StaticMix {
    /// Total static instructions.
    pub total: usize,
    /// Conditional branches.
    pub branches: usize,
    /// Unconditional jumps.
    pub jumps: usize,
    /// Loads.
    pub loads: usize,
    /// Stores.
    pub stores: usize,
    /// Instructions writing an integer register.
    pub int_writers: usize,
    /// Instructions writing an FP register.
    pub fp_writers: usize,
}

/// A complete program: instructions plus initial data memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable name (e.g. the synthetic workload name).
    pub name: String,
    /// The instruction stream; the entry point is index 0.
    pub instrs: Vec<Instruction>,
    /// Initial contents of data memory (word 0 upwards); the remainder of
    /// memory is zero-filled.
    pub data: Vec<u64>,
    /// Total data-memory size in 64-bit words.
    pub memory_words: usize,
}

impl Program {
    /// Create a program with the default memory size.
    pub fn new(name: impl Into<String>, instrs: Vec<Instruction>) -> Self {
        Program {
            name: name.into(),
            instrs,
            data: Vec::new(),
            memory_words: DEFAULT_MEMORY_WORDS,
        }
    }

    /// Create a program with an explicit initial data image and memory size.
    pub fn with_data(
        name: impl Into<String>,
        instrs: Vec<Instruction>,
        data: Vec<u64>,
        memory_words: usize,
    ) -> Self {
        Program {
            name: name.into(),
            instrs,
            data,
            memory_words,
        }
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Fetch the instruction at `pc`, if it exists.
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<&Instruction> {
        self.instrs.get(pc)
    }

    /// Validate the whole program: operand classes, control-flow targets,
    /// presence of a halt, data image size.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        if self.data.len() > self.memory_words {
            return Err(ProgramError::DataTooLarge {
                data_words: self.data.len(),
                memory_words: self.memory_words,
            });
        }
        let mut has_halt = false;
        for (index, instr) in self.instrs.iter().enumerate() {
            if let Err(reason) = instr.validate() {
                return Err(ProgramError::BadInstruction { index, reason });
            }
            if instr.op.is_control() {
                let target = instr.imm;
                if target < 0 || target as usize >= self.instrs.len() {
                    return Err(ProgramError::BadTarget { index, target });
                }
            }
            if instr.op == Opcode::Halt {
                has_halt = true;
            }
        }
        if !has_halt {
            return Err(ProgramError::NoHalt);
        }
        Ok(())
    }

    /// Compute the static instruction mix.
    pub fn static_mix(&self) -> StaticMix {
        let mut mix = StaticMix {
            total: self.instrs.len(),
            ..StaticMix::default()
        };
        for instr in &self.instrs {
            if instr.op.is_cond_branch() {
                mix.branches += 1;
            }
            if instr.op == Opcode::Jump {
                mix.jumps += 1;
            }
            if instr.op.is_load() {
                mix.loads += 1;
            }
            if instr.op.is_store() {
                mix.stores += 1;
            }
            match instr.op.dst_class() {
                Some(RegClass::Int) => mix.int_writers += 1,
                Some(RegClass::Fp) => mix.fp_writers += 1,
                None => {}
            }
        }
        mix
    }

    /// Render a human-readable disassembly listing (used by examples and
    /// debugging).
    pub fn disassemble(&self) -> String {
        let mut out = String::with_capacity(self.instrs.len() * 24);
        out.push_str(&format!(
            "; program: {} ({} instructions)\n",
            self.name,
            self.len()
        ));
        for (i, instr) in self.instrs.iter().enumerate() {
            out.push_str(&format!("{i:6}:  {instr}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BranchCond;
    use crate::reg::ArchReg;

    fn tiny_program() -> Program {
        Program::new(
            "tiny",
            vec![
                Instruction {
                    op: Opcode::ILoadImm,
                    dst: Some(ArchReg::int(1)),
                    src1: None,
                    src2: None,
                    imm: 10,
                },
                Instruction {
                    op: Opcode::IAddImm,
                    dst: Some(ArchReg::int(1)),
                    src1: Some(ArchReg::int(1)),
                    src2: None,
                    imm: -1,
                },
                Instruction {
                    op: Opcode::Branch(BranchCond::Gt),
                    dst: None,
                    src1: Some(ArchReg::int(1)),
                    src2: None,
                    imm: 1,
                },
                Instruction::halt(),
            ],
        )
    }

    #[test]
    fn valid_program_passes_validation() {
        assert!(tiny_program().validate().is_ok());
    }

    #[test]
    fn empty_program_rejected() {
        let p = Program::new("empty", vec![]);
        assert_eq!(p.validate(), Err(ProgramError::Empty));
    }

    #[test]
    fn missing_halt_rejected() {
        let mut p = tiny_program();
        p.instrs.pop();
        p.instrs.push(Instruction::nop());
        assert_eq!(p.validate(), Err(ProgramError::NoHalt));
    }

    #[test]
    fn bad_branch_target_rejected() {
        let mut p = tiny_program();
        p.instrs[2].imm = 100;
        assert!(matches!(
            p.validate(),
            Err(ProgramError::BadTarget {
                index: 2,
                target: 100
            })
        ));
    }

    #[test]
    fn malformed_instruction_rejected() {
        let mut p = tiny_program();
        p.instrs[0].dst = Some(ArchReg::fp(0));
        assert!(matches!(
            p.validate(),
            Err(ProgramError::BadInstruction { index: 0, .. })
        ));
    }

    #[test]
    fn oversized_data_rejected() {
        let mut p = tiny_program();
        p.memory_words = 4;
        p.data = vec![0; 8];
        assert!(matches!(
            p.validate(),
            Err(ProgramError::DataTooLarge { .. })
        ));
    }

    #[test]
    fn static_mix_counts() {
        let mix = tiny_program().static_mix();
        assert_eq!(mix.total, 4);
        assert_eq!(mix.branches, 1);
        assert_eq!(mix.jumps, 0);
        assert_eq!(mix.int_writers, 2);
        assert_eq!(mix.fp_writers, 0);
    }

    #[test]
    fn disassembly_mentions_every_instruction() {
        let p = tiny_program();
        let d = p.disassemble();
        assert!(d.contains("li r1"));
        assert!(d.contains("halt"));
        assert_eq!(d.lines().count(), p.len() + 1);
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = tiny_program();
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(p.len()).is_none());
    }
}
