//! Architectural emulator — the golden model.
//!
//! The emulator executes a [`Program`] one instruction at a time with purely
//! architectural state (logical registers + memory).  The out-of-order
//! simulator in `earlyreg-sim` must commit exactly the same instruction stream
//! and produce the same final state (modulo registers holding provably dead
//! values discarded by early release — see the paper's Section 4.3); the
//! integration tests enforce this.

use crate::instr::{Instruction, Opcode};
use crate::program::Program;
use crate::reg::{ArchReg, RegClass, NUM_LOGICAL_FP, NUM_LOGICAL_INT};
use crate::semantics;
use serde::{Deserialize, Serialize};

/// Complete architectural state: logical registers plus data memory.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Integer logical registers.
    pub int_regs: [i64; NUM_LOGICAL_INT],
    /// Floating-point logical registers.
    pub fp_regs: [f64; NUM_LOGICAL_FP],
    /// Word-addressed data memory (raw 64-bit patterns).
    pub memory: Vec<u64>,
}

impl ArchState {
    /// Fresh state with zeroed registers and the program's initial data image.
    pub fn for_program(program: &Program) -> Self {
        let mut memory = vec![0u64; program.memory_words];
        memory[..program.data.len()].copy_from_slice(&program.data);
        ArchState {
            int_regs: [0; NUM_LOGICAL_INT],
            fp_regs: [0.0; NUM_LOGICAL_FP],
            memory,
        }
    }

    /// Read a logical register as its raw 64-bit pattern.
    pub fn read_raw(&self, reg: ArchReg) -> u64 {
        match reg.class() {
            RegClass::Int => self.int_regs[reg.index()] as u64,
            RegClass::Fp => self.fp_regs[reg.index()].to_bits(),
        }
    }

    /// Read an integer register.
    #[inline]
    pub fn read_int(&self, reg: ArchReg) -> i64 {
        debug_assert_eq!(reg.class(), RegClass::Int);
        self.int_regs[reg.index()]
    }

    /// Read an FP register.
    #[inline]
    pub fn read_fp(&self, reg: ArchReg) -> f64 {
        debug_assert_eq!(reg.class(), RegClass::Fp);
        self.fp_regs[reg.index()]
    }

    /// Write a register from a raw 64-bit pattern (class taken from `reg`).
    pub fn write_raw(&mut self, reg: ArchReg, bits: u64) {
        match reg.class() {
            RegClass::Int => self.int_regs[reg.index()] = bits as i64,
            RegClass::Fp => self.fp_regs[reg.index()] = f64::from_bits(bits),
        }
    }

    /// A cheap order-sensitive fingerprint of the whole state, used by tests
    /// to compare simulator and emulator outcomes quickly.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for &r in &self.int_regs {
            mix(r as u64);
        }
        for &r in &self.fp_regs {
            mix(r.to_bits());
        }
        for &w in &self.memory {
            mix(w);
        }
        h
    }
}

/// What a single emulation step did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// PC (instruction index) of the executed instruction.
    pub pc: usize,
    /// PC of the next instruction to execute.
    pub next_pc: usize,
    /// Whether the instruction was a conditional branch and, if so, whether it
    /// was taken.
    pub branch_taken: Option<bool>,
    /// Effective word address for memory operations.
    pub mem_addr: Option<usize>,
    /// True if this instruction halted the program.
    pub halted: bool,
}

/// Aggregate result of an emulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EmulationResult {
    /// Dynamic instructions executed (including the halt).
    pub instructions: u64,
    /// Whether the program reached `Halt` (false = the instruction budget ran
    /// out first).
    pub halted: bool,
    /// Dynamic conditional branches executed.
    pub branches: u64,
    /// How many of those were taken.
    pub taken_branches: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
}

impl EmulationResult {
    /// Fraction of dynamic instructions that are conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branches as f64 / self.instructions as f64
        }
    }
}

/// The architectural emulator.
#[derive(Debug, Clone)]
pub struct Emulator<'p> {
    program: &'p Program,
    /// Architectural state (public so tests can inspect/seed it).
    pub state: ArchState,
    pc: usize,
    halted: bool,
    result: EmulationResult,
}

impl<'p> Emulator<'p> {
    /// Create an emulator positioned at the program entry point.
    pub fn new(program: &'p Program) -> Self {
        Emulator {
            state: ArchState::for_program(program),
            program,
            pc: 0,
            halted: false,
            result: EmulationResult::default(),
        }
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// True once a `Halt` has executed.
    #[inline]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Statistics accumulated so far.
    #[inline]
    pub fn result(&self) -> EmulationResult {
        self.result
    }

    fn operand_int(&self, reg: Option<ArchReg>) -> i64 {
        match reg {
            Some(r) if r.class() == RegClass::Int => self.state.read_int(r),
            _ => 0,
        }
    }

    fn operand_fp(&self, reg: Option<ArchReg>) -> f64 {
        match reg {
            Some(r) if r.class() == RegClass::Fp => self.state.read_fp(r),
            _ => 0.0,
        }
    }

    /// Execute one instruction.  Returns `None` once the program has halted
    /// (or if the PC ran off the end of the program, which validated programs
    /// cannot do).
    pub fn step(&mut self) -> Option<StepOutcome> {
        if self.halted {
            return None;
        }
        let instr: Instruction = *self.program.fetch(self.pc)?;
        let pc = self.pc;
        let mut next_pc = pc + 1;
        let mut branch_taken = None;
        let mut mem_addr = None;

        match instr.op {
            Opcode::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Opcode::Nop => {}
            Opcode::Jump => {
                next_pc = instr.imm as usize;
            }
            Opcode::Branch(cond) => {
                let a = self.operand_int(instr.src1);
                let b = self.operand_int(instr.src2);
                let taken = semantics::branch_taken(cond, a, b);
                branch_taken = Some(taken);
                self.result.branches += 1;
                if taken {
                    self.result.taken_branches += 1;
                    next_pc = instr.imm as usize;
                }
            }
            Opcode::LoadInt | Opcode::LoadFp => {
                let base = self.operand_int(instr.src1);
                let addr = semantics::effective_addr(base, instr.imm, self.state.memory.len());
                mem_addr = Some(addr);
                self.result.loads += 1;
                let bits = self.state.memory[addr];
                let dst = instr.dst.expect("loads have a destination");
                match instr.op {
                    Opcode::LoadInt => {
                        self.state.int_regs[dst.index()] = semantics::word_to_int(bits)
                    }
                    Opcode::LoadFp => self.state.fp_regs[dst.index()] = semantics::word_to_fp(bits),
                    _ => unreachable!(),
                }
            }
            Opcode::StoreInt | Opcode::StoreFp => {
                let base = self.operand_int(instr.src1);
                let addr = semantics::effective_addr(base, instr.imm, self.state.memory.len());
                mem_addr = Some(addr);
                self.result.stores += 1;
                let bits = match instr.op {
                    Opcode::StoreInt => semantics::int_to_word(self.operand_int(instr.src2)),
                    Opcode::StoreFp => semantics::fp_to_word(self.operand_fp(instr.src2)),
                    _ => unreachable!(),
                };
                self.state.memory[addr] = bits;
            }
            _ => {
                // Register-to-register computation.
                let a_int = self.operand_int(instr.src1);
                let b_int = self.operand_int(instr.src2);
                let a_fp = self.operand_fp(instr.src1);
                let b_fp = self.operand_fp(instr.src2);
                match semantics::compute(instr.op, a_int, b_int, a_fp, b_fp, instr.imm) {
                    semantics::ExecValue::Int(v) => {
                        let dst = instr.dst.expect("int-result op has a destination");
                        self.state.int_regs[dst.index()] = v;
                    }
                    semantics::ExecValue::Fp(v) => {
                        let dst = instr.dst.expect("fp-result op has a destination");
                        self.state.fp_regs[dst.index()] = v;
                    }
                    semantics::ExecValue::None => {}
                }
            }
        }

        self.result.instructions += 1;
        self.result.halted = self.halted;
        self.pc = next_pc;
        Some(StepOutcome {
            pc,
            next_pc,
            branch_taken,
            mem_addr,
            halted: self.halted,
        })
    }

    /// Run until halt or until `max_instructions` have executed.
    pub fn run(&mut self, max_instructions: u64) -> EmulationResult {
        while !self.halted && self.result.instructions < max_instructions {
            if self.step().is_none() {
                break;
            }
        }
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::BranchCond;

    fn sum_program(n: i64) -> Program {
        // r2 = sum of 1..=n computed with a loop; result stored to memory[0].
        let mut b = ProgramBuilder::new("sum");
        let i = ArchReg::int(1);
        let acc = ArchReg::int(2);
        let base = ArchReg::int(3);
        b.li(i, n);
        b.li(acc, 0);
        b.li(base, 0);
        let top = b.here();
        b.add(acc, acc, i);
        b.addi(i, i, -1);
        b.branch(BranchCond::Gt, i, None, top);
        b.store_int(base, 0, acc);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn sum_loop_produces_expected_value() {
        let p = sum_program(10);
        let mut e = Emulator::new(&p);
        let r = e.run(10_000);
        assert!(r.halted);
        assert_eq!(e.state.read_int(ArchReg::int(2)), 55);
        assert_eq!(e.state.memory[0], 55);
        assert_eq!(r.branches, 10);
        assert_eq!(r.taken_branches, 9);
        assert_eq!(r.stores, 1);
    }

    #[test]
    fn instruction_budget_stops_execution() {
        let p = sum_program(1_000_000);
        let mut e = Emulator::new(&p);
        let r = e.run(100);
        assert!(!r.halted);
        assert_eq!(r.instructions, 100);
    }

    #[test]
    fn fp_dataflow_works() {
        let mut b = ProgramBuilder::new("fp");
        let f0 = ArchReg::fp(0);
        let f1 = ArchReg::fp(1);
        let f2 = ArchReg::fp(2);
        let base = ArchReg::int(1);
        b.li(base, 100);
        b.fli(f0, 1.5);
        b.fli(f1, 2.0);
        b.fmul(f2, f0, f1);
        b.fadd(f2, f2, f0);
        b.store_fp(base, 0, f2);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        let r = e.run(100);
        assert!(r.halted);
        assert_eq!(e.state.read_fp(ArchReg::fp(2)), 4.5);
        assert_eq!(f64::from_bits(e.state.memory[100]), 4.5);
    }

    #[test]
    fn loads_see_initial_data_and_later_stores() {
        let mut b = ProgramBuilder::new("mem");
        let addr = b.data_i64(&[7, 8, 9]);
        let base = ArchReg::int(1);
        let v = ArchReg::int(2);
        b.li(base, addr);
        b.load_int(v, base, 2);
        b.addi(v, v, 1);
        b.store_int(base, 0, v);
        b.load_int(v, base, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        e.run(100);
        assert_eq!(e.state.read_int(ArchReg::int(2)), 10);
        assert_eq!(e.state.memory[addr as usize], 10);
    }

    #[test]
    fn step_outcome_reports_branches_and_memory() {
        let p = sum_program(2);
        let mut e = Emulator::new(&p);
        // li, li, li
        for _ in 0..3 {
            let o = e.step().unwrap();
            assert_eq!(o.branch_taken, None);
        }
        // add, addi
        e.step().unwrap();
        e.step().unwrap();
        // branch (taken, i = 1 > 0)
        let o = e.step().unwrap();
        assert_eq!(o.branch_taken, Some(true));
        assert_eq!(o.next_pc, 3);
    }

    #[test]
    fn halt_stops_stepping() {
        let p = sum_program(1);
        let mut e = Emulator::new(&p);
        e.run(1000);
        assert!(e.halted());
        assert!(e.step().is_none());
    }

    #[test]
    fn fingerprint_changes_with_state() {
        let p = sum_program(3);
        let mut e1 = Emulator::new(&p);
        let mut e2 = Emulator::new(&p);
        assert_eq!(e1.state.fingerprint(), e2.state.fingerprint());
        e1.run(1000);
        e2.run(2);
        assert_ne!(e1.state.fingerprint(), e2.state.fingerprint());
    }

    #[test]
    fn raw_register_accessors_round_trip() {
        let p = sum_program(1);
        let mut e = Emulator::new(&p);
        e.state.write_raw(ArchReg::int(5), 42);
        assert_eq!(e.state.read_raw(ArchReg::int(5)), 42);
        e.state.write_raw(ArchReg::fp(5), 2.5f64.to_bits());
        assert_eq!(e.state.read_fp(ArchReg::fp(5)), 2.5);
    }
}
