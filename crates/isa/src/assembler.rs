//! Text assembler and loader for the mini ISA.
//!
//! [`assemble`] turns a human-writable assembly source into a validated
//! [`Program`], so real kernels (matmul, quicksort, a prime sieve, ...) can
//! be shipped as `.asm` files and registered as workloads instead of being
//! hand-built through [`crate::ProgramBuilder`].  The syntax is the exact
//! dual of [`Program::disassemble`]: every mnemonic and operand is printed
//! the way [`crate::Instruction`]'s `Display` writes it, so
//! assemble → disassemble → assemble is a fixed point on the instruction
//! stream (pinned by property tests).
//!
//! # Syntax
//!
//! ```text
//! ; comment (also "//"); a leading "NN:" instruction index is ignored,
//! ; so disassembly listings reassemble verbatim.
//! .memory 32768        ; data-memory size in 64-bit words (optional)
//! .arg n = 8           ; argument word (see "Arguments" below)
//! table:  .word 1, 2, 3    ; i64 data words; the label is its word address
//! grid:   .fword 1.0, 2.5  ; f64 data words
//! out:    .zero 64         ; zero-filled words
//! loop:   addi r1, r1, #-1 ; "#" before immediates is optional
//!         ld r2, r1, 4     ; load:  r2 = memory[r1 + 4]
//!         st r1, r2, 4     ; store: memory[r1 + 4] = r2
//!         li r3, table     ; symbols resolve to word addresses / indices
//!         bgt r1, loop     ; branch targets: label or absolute index
//!         halt
//! ```
//!
//! Labels bind to the *next* statement: an instruction label resolves to the
//! instruction index, a data label to the data word address.  `fli` treats an
//! integer immediate as a raw f64 bit pattern (what disassembly prints) and a
//! float literal (`1.5`, `-2e3`) as the value itself.
//!
//! # Arguments
//!
//! `.arg NAME = DEFAULT` declares one argument; arguments occupy the leading
//! data words in declaration order (so they must precede any other data
//! directive), and `NAME` resolves to the argument's word *address*.  The
//! loader ([`Assembly::with_args`]) overrides the defaults without
//! reassembling — the convention every registered asm workload uses to
//! receive its iteration count:
//!
//! ```text
//! .arg reps = 1
//!         li r1, reps      ; r1 = address of the argument word
//!         ld r1, r1        ; r1 = its value
//! ```
//!
//! Every error carries the 1-based source line it was detected on;
//! [`assemble`] never panics on malformed input (property-tested).

use crate::instr::{Instruction, Opcode};
use crate::program::{Program, ProgramError, DEFAULT_MEMORY_WORDS};
use crate::reg::{ArchReg, RegClass, NUM_LOGICAL_FP, NUM_LOGICAL_INT};
use crate::semantics::{fp_to_word, int_to_word};
use std::collections::HashMap;
use std::fmt;

/// An assembly-time error, located on a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number the error was detected on (0 = whole program,
    /// e.g. a missing `halt`).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

/// One declared `.arg`: name, data-word slot and default value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgSpec {
    /// Argument name (the symbol resolving to its word address).
    pub name: String,
    /// Data word the argument occupies (declaration order: 0, 1, ...).
    pub slot: usize,
    /// Value assembled into the data image when the loader does not
    /// override it.
    pub default: i64,
}

/// The output of [`assemble`]: a validated program plus its argument block.
#[derive(Debug, Clone)]
pub struct Assembly {
    /// The assembled program with every argument at its default.
    pub program: Program,
    /// Declared arguments, in slot order.
    pub args: Vec<ArgSpec>,
}

impl Assembly {
    /// Load the program with explicit argument values: `values[k]` replaces
    /// the default of the k-th declared `.arg`; missing trailing values keep
    /// their defaults.  Fails when more values are passed than arguments
    /// were declared.
    pub fn with_args(&self, values: &[i64]) -> Result<Program, String> {
        if values.len() > self.args.len() {
            return Err(format!(
                "{} argument values passed but only {} declared ({})",
                values.len(),
                self.args.len(),
                self.args
                    .iter()
                    .map(|a| a.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let mut program = self.program.clone();
        for (arg, &value) in self.args.iter().zip(values) {
            program.data[arg.slot] = int_to_word(value);
        }
        Ok(program)
    }
}

/// Assemble `source` into a program named `name` (arguments at their
/// declared defaults).  Convenience over [`assemble`] for sources without an
/// argument block.
pub fn assemble_program(name: &str, source: &str) -> Result<Program, AsmError> {
    assemble(name, source).map(|assembly| assembly.program)
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

/// A parsed operand (before symbol resolution).
#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Reg(ArchReg),
    /// Integer immediate (`#5`, `-3`).
    Int(i64),
    /// Float immediate (`1.5`); only `fli` and `.fword` accept these.
    Float(f64),
    /// Symbol reference with an optional `+`/`-` offset (`table`, `loop+2`).
    Symbol(String, i64),
}

/// One statement: what a non-empty line contributes.
#[derive(Debug)]
enum Statement {
    Instr { op: Opcode, operands: Vec<Operand> },
    Word(Vec<Operand>),
    FWord(Vec<Operand>),
    Zero(usize),
    Memory,
    Arg { default: i64 },
}

/// Where a symbol points.
#[derive(Debug, Clone, Copy)]
enum SymbolValue {
    /// Instruction index.
    Code(usize),
    /// Data word address (data labels and argument names).
    Data(i64),
}

impl SymbolValue {
    fn value(self) -> i64 {
        match self {
            SymbolValue::Code(index) => index as i64,
            SymbolValue::Data(address) => address,
        }
    }
}

fn parse_register(token: &str) -> Option<ArchReg> {
    let (class, limit, rest) = match token.as_bytes().first()? {
        b'r' => (RegClass::Int, NUM_LOGICAL_INT, &token[1..]),
        b'f' => (RegClass::Fp, NUM_LOGICAL_FP, &token[1..]),
        _ => return None,
    };
    // "f" followed by a non-number is a symbol (e.g. a label "fill"), not a
    // malformed register; only all-digit suffixes are register candidates.
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let index: usize = rest.parse().ok()?;
    (index < limit).then(|| match class {
        RegClass::Int => ArchReg::int(index),
        RegClass::Fp => ArchReg::fp(index),
    })
}

fn is_symbol(token: &str) -> bool {
    let mut bytes = token.bytes();
    matches!(bytes.next(), Some(b) if b.is_ascii_alphabetic() || b == b'_')
        && token
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

fn parse_operand(token: &str, line: usize) -> Result<Operand, AsmError> {
    let token = token.trim();
    if token.is_empty() {
        return Err(AsmError::new(line, "empty operand"));
    }
    if let Some(reg) = parse_register(token) {
        return Ok(Operand::Reg(reg));
    }
    // Register-looking tokens with an out-of-range index are errors, not
    // symbols: "r99" is almost certainly a typo'd register.
    if let Some(rest) = token.strip_prefix('r').or_else(|| token.strip_prefix('f')) {
        if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
            return Err(AsmError::new(
                line,
                format!("register index out of range in '{token}' (r0-r31, f0-f31)"),
            ));
        }
    }
    let bare = token.strip_prefix('#').unwrap_or(token);
    if bare.is_empty() {
        return Err(AsmError::new(line, "'#' without a value"));
    }
    if let Ok(value) = bare.parse::<i64>() {
        return Ok(Operand::Int(value));
    }
    // Float literal: must contain a '.', exponent or special form so that
    // plain integers never silently become floats.
    if bare.contains(['.', 'e', 'E']) || bare.ends_with("inf") || bare.ends_with("nan") {
        if let Ok(value) = bare.parse::<f64>() {
            return Ok(Operand::Float(value));
        }
    }
    // Symbol, optionally with a +N / -N offset.
    let (name, offset) = match bare.find(['+', '-']) {
        Some(split) if split > 0 => {
            let (name, tail) = bare.split_at(split);
            let offset: i64 = tail.parse().map_err(|_| {
                AsmError::new(line, format!("invalid symbol offset '{tail}' in '{bare}'"))
            })?;
            (name, offset)
        }
        _ => (bare, 0),
    };
    if !is_symbol(name) {
        return Err(AsmError::new(line, format!("invalid operand '{token}'")));
    }
    Ok(Operand::Symbol(name.to_string(), offset))
}

fn parse_operands(text: &str, line: usize) -> Result<Vec<Operand>, AsmError> {
    text.split(',')
        .map(|token| parse_operand(token, line))
        .collect()
}

fn mnemonic_table() -> HashMap<String, Opcode> {
    Opcode::ALL.iter().map(|&op| (op.mnemonic(), op)).collect()
}

/// Strip comments (`;`, `//`) and an optional leading `NN:` disassembly
/// index, returning the significant text.
fn significant(line: &str) -> &str {
    let line = line.split(';').next().unwrap_or("");
    let line = line.split("//").next().unwrap_or("").trim();
    // A leading all-digit prefix before ':' is a disassembly instruction
    // index, not a label.
    if let Some((head, tail)) = line.split_once(':') {
        let head = head.trim();
        if !head.is_empty() && head.bytes().all(|b| b.is_ascii_digit()) {
            return tail.trim();
        }
    }
    line
}

// ---------------------------------------------------------------------------
// assembly
// ---------------------------------------------------------------------------

struct Assembler {
    statements: Vec<(usize, Statement)>,
    symbols: HashMap<String, SymbolValue>,
    args: Vec<ArgSpec>,
    memory_words: usize,
    instr_count: usize,
    data_words: usize,
    data_started: bool,
}

impl Assembler {
    fn new() -> Self {
        Assembler {
            statements: Vec::new(),
            symbols: HashMap::new(),
            args: Vec::new(),
            memory_words: DEFAULT_MEMORY_WORDS,
            instr_count: 0,
            data_words: 0,
            data_started: false,
        }
    }

    fn define(&mut self, name: &str, value: SymbolValue, line: usize) -> Result<(), AsmError> {
        if self.symbols.insert(name.to_string(), value).is_some() {
            return Err(AsmError::new(
                line,
                format!("symbol '{name}' defined twice"),
            ));
        }
        Ok(())
    }

    /// First pass over one source line: parse, record the statement and bind
    /// labels/symbols to their final positions.
    fn first_pass(
        &mut self,
        raw: &str,
        line: usize,
        pending: &mut Vec<String>,
    ) -> Result<(), AsmError> {
        let mut text = significant(raw);
        // Labels: any number of leading `name:` prefixes.
        while let Some((head, tail)) = text.split_once(':') {
            let head = head.trim();
            if !is_symbol(head) {
                break;
            }
            pending.push(head.to_string());
            text = tail.trim();
        }
        if text.is_empty() {
            return Ok(());
        }
        let (keyword, rest) = match text.find(char::is_whitespace) {
            Some(split) => (&text[..split], text[split..].trim()),
            None => (text, ""),
        };

        if let Some(directive) = keyword.strip_prefix('.') {
            match directive {
                "memory" => {
                    self.memory_words = rest.parse().map_err(|_| {
                        AsmError::new(line, format!("invalid .memory size '{rest}'"))
                    })?;
                    self.statements.push((line, Statement::Memory));
                }
                "arg" => {
                    if self.data_started {
                        return Err(AsmError::new(
                            line,
                            ".arg must precede every data directive (arguments are the leading data words)",
                        ));
                    }
                    let (name, default) = match rest.split_once('=') {
                        Some((name, value)) => {
                            let value = value.trim();
                            let default = value.parse::<i64>().map_err(|_| {
                                AsmError::new(line, format!("invalid .arg default '{value}'"))
                            })?;
                            (name.trim(), default)
                        }
                        None => (rest.trim(), 0),
                    };
                    if !is_symbol(name) {
                        return Err(AsmError::new(line, format!("invalid .arg name '{name}'")));
                    }
                    let slot = self.args.len();
                    self.define(name, SymbolValue::Data(slot as i64), line)?;
                    self.args.push(ArgSpec {
                        name: name.to_string(),
                        slot,
                        default,
                    });
                    self.data_words += 1;
                    self.statements.push((line, Statement::Arg { default }));
                }
                "word" | "fword" | "zero" => {
                    self.data_started = true;
                    for label in pending.drain(..) {
                        self.define(&label, SymbolValue::Data(self.data_words as i64), line)?;
                    }
                    match directive {
                        "zero" => {
                            let words: usize = rest.parse().map_err(|_| {
                                AsmError::new(line, format!("invalid .zero count '{rest}'"))
                            })?;
                            self.data_words += words;
                            self.statements.push((line, Statement::Zero(words)));
                        }
                        _ => {
                            let operands = parse_operands(rest, line)?;
                            self.data_words += operands.len();
                            self.statements.push((
                                line,
                                if directive == "word" {
                                    Statement::Word(operands)
                                } else {
                                    Statement::FWord(operands)
                                },
                            ));
                        }
                    }
                }
                other => {
                    return Err(AsmError::new(
                        line,
                        format!(
                            "unknown directive '.{other}' (.memory, .arg, .word, .fword, .zero)"
                        ),
                    ));
                }
            }
            return Ok(());
        }

        // An instruction: bind pending labels to its index.
        for label in pending.drain(..) {
            self.define(&label, SymbolValue::Code(self.instr_count), line)?;
        }
        let Some(op) = MNEMONICS.with(|table| table.get(keyword).copied()) else {
            return Err(AsmError::new(line, format!("unknown mnemonic '{keyword}'")));
        };
        let operands = if rest.is_empty() {
            Vec::new()
        } else {
            parse_operands(rest, line)?
        };
        self.instr_count += 1;
        self.statements
            .push((line, Statement::Instr { op, operands }));
        Ok(())
    }

    fn resolve(&self, operand: &Operand, line: usize) -> Result<i64, AsmError> {
        match operand {
            Operand::Int(value) => Ok(*value),
            Operand::Float(value) => Err(AsmError::new(
                line,
                format!("float literal '{value}' is only valid for fli and .fword"),
            )),
            Operand::Reg(reg) => Err(AsmError::new(
                line,
                format!("expected an immediate or symbol, found register {reg}"),
            )),
            Operand::Symbol(name, offset) => self
                .symbols
                .get(name)
                .map(|symbol| symbol.value() + offset)
                .ok_or_else(|| AsmError::new(line, format!("undefined symbol '{name}'"))),
        }
    }

    /// Resolve one operand as an immediate, flagging float literals so `fli`
    /// can convert them.
    fn resolve_imm(&self, operand: &Operand, op: Opcode, line: usize) -> Result<i64, AsmError> {
        if let Operand::Float(value) = operand {
            if op == Opcode::FLoadImm {
                return Ok(fp_to_word(*value) as i64);
            }
            return Err(AsmError::new(
                line,
                format!("float immediate '{value}' is only valid for fli"),
            ));
        }
        self.resolve(operand, line)
    }

    /// Second pass: turn one instruction statement into an [`Instruction`].
    fn encode(
        &self,
        op: Opcode,
        operands: &[Operand],
        line: usize,
    ) -> Result<Instruction, AsmError> {
        let mut instr = Instruction {
            op,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        };
        let mut index = 0;
        fn next<'a>(
            operands: &'a [Operand],
            index: &mut usize,
            op: Opcode,
            line: usize,
            what: &str,
        ) -> Result<&'a Operand, AsmError> {
            let operand = operands
                .get(*index)
                .ok_or_else(|| AsmError::new(line, format!("{}: missing {what}", op.mnemonic())))?;
            *index += 1;
            Ok(operand)
        }
        let reg = |operand: &Operand, what: &str| -> Result<ArchReg, AsmError> {
            match operand {
                Operand::Reg(reg) => Ok(*reg),
                other => Err(AsmError::new(
                    line,
                    format!(
                        "{}: {what} must be a register, found {other:?}",
                        op.mnemonic()
                    ),
                )),
            }
        };

        if op.dst_class().is_some() {
            let operand = next(operands, &mut index, op, line, "destination register")?;
            instr.dst = Some(reg(operand, "destination")?);
        }
        let (c1, c2) = op.src_classes();
        if c1.is_some() {
            let operand = next(operands, &mut index, op, line, "source register 1")?;
            instr.src1 = Some(reg(operand, "source 1")?);
        }
        if c2.is_some() {
            // Optional for branches (compare against zero): a branch's last
            // operand is always its target, so a register here is src2 and
            // anything else ends the register list.
            let take = match operands.get(index) {
                Some(Operand::Reg(_)) => true,
                _ => !op.is_cond_branch(),
            };
            if take {
                let operand = next(operands, &mut index, op, line, "source register 2")?;
                instr.src2 = Some(reg(operand, "source 2")?);
            }
        }
        // Required vs optional mirrors `Instruction`'s `Display`: control
        // targets and `li`/`fli` immediates are always printed (required
        // here), while imm-ALU constants and memory offsets are omitted when
        // zero (optional here, defaulting to 0).
        let wants_imm = op.is_control() || matches!(op, Opcode::ILoadImm | Opcode::FLoadImm);
        let optional_imm = op.is_mem()
            || matches!(
                op,
                Opcode::IAddImm
                    | Opcode::IAndImm
                    | Opcode::IXorImm
                    | Opcode::IShlImm
                    | Opcode::IShrImm
            );
        if wants_imm {
            let what = if op.is_control() {
                "target (label or absolute index)"
            } else {
                "immediate"
            };
            let operand = next(operands, &mut index, op, line, what)?;
            instr.imm = self.resolve_imm(operand, op, line)?;
        } else if optional_imm && index < operands.len() {
            let operand = next(operands, &mut index, op, line, "offset")?;
            instr.imm = self.resolve_imm(operand, op, line)?;
        }
        if index < operands.len() {
            return Err(AsmError::new(
                line,
                format!(
                    "{}: {} operand(s) expected, {} given",
                    op.mnemonic(),
                    index,
                    operands.len()
                ),
            ));
        }
        instr
            .validate()
            .map_err(|message| AsmError::new(line, message))?;
        Ok(instr)
    }
}

thread_local! {
    static MNEMONICS: HashMap<String, Opcode> = mnemonic_table();
}

/// Assemble `source` into a named, validated [`Assembly`].
///
/// Errors carry the 1-based source line; malformed input never panics.
pub fn assemble(name: &str, source: &str) -> Result<Assembly, AsmError> {
    let mut assembler = Assembler::new();
    let mut pending: Vec<String> = Vec::new();
    for (number, raw) in source.lines().enumerate() {
        assembler.first_pass(raw, number + 1, &mut pending)?;
    }
    if let Some(label) = pending.first() {
        return Err(AsmError::new(
            source.lines().count(),
            format!("label '{label}' is not attached to an instruction or data directive"),
        ));
    }

    // Second pass: emit instructions and the data image.
    let mut instrs = Vec::with_capacity(assembler.instr_count);
    let mut lines = Vec::with_capacity(assembler.instr_count);
    let mut data: Vec<u64> = Vec::with_capacity(assembler.data_words);
    for (line, statement) in &assembler.statements {
        match statement {
            Statement::Instr { op, operands } => {
                instrs.push(assembler.encode(*op, operands, *line)?);
                lines.push(*line);
            }
            Statement::Arg { default } => data.push(int_to_word(*default)),
            Statement::Word(operands) => {
                for operand in operands {
                    data.push(int_to_word(assembler.resolve(operand, *line)?));
                }
            }
            Statement::FWord(operands) => {
                for operand in operands {
                    match operand {
                        Operand::Float(value) => data.push(fp_to_word(*value)),
                        Operand::Int(value) => data.push(fp_to_word(*value as f64)),
                        other => {
                            return Err(AsmError::new(
                                *line,
                                format!(".fword values must be numbers, found {other:?}"),
                            ))
                        }
                    }
                }
            }
            Statement::Zero(words) => data.extend(std::iter::repeat_n(0, *words)),
            Statement::Memory => {}
        }
    }

    let program = Program::with_data(name, instrs, data, assembler.memory_words);
    program.validate().map_err(|error| match &error {
        ProgramError::BadInstruction { index, .. } | ProgramError::BadTarget { index, .. } => {
            AsmError::new(lines.get(*index).copied().unwrap_or(0), error.to_string())
        }
        _ => AsmError::new(0, error.to_string()),
    })?;
    Ok(Assembly {
        program,
        args: assembler.args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::Emulator;
    use crate::instr::BranchCond;

    #[test]
    fn assembles_countdown_loop() {
        let program = assemble_program(
            "countdown",
            "
            ; count r1 down from 10
                    li r1, #10
            loop:   addi r1, r1, #-1
                    bgt r1, loop
                    halt
            ",
        )
        .unwrap();
        assert_eq!(program.len(), 4);
        assert_eq!(program.instrs[0].op, Opcode::ILoadImm);
        assert_eq!(program.instrs[2].op, Opcode::Branch(BranchCond::Gt));
        assert_eq!(program.instrs[2].imm, 1);
        let result = Emulator::new(&program).run(1_000);
        assert!(result.halted);
    }

    #[test]
    fn hash_before_immediates_is_optional() {
        let a = assemble_program("a", "li r1, #7\nhalt\n").unwrap();
        let b = assemble_program("b", "li r1, 7\nhalt\n").unwrap();
        assert_eq!(a.instrs, b.instrs);
    }

    #[test]
    fn data_labels_resolve_to_word_addresses() {
        let assembly = assemble(
            "data",
            "
            .arg n = 3
            table:  .word 10, 20, 30
            out:    .zero 2
                    li r1, table
                    li r2, out
                    halt
            ",
        )
        .unwrap();
        // arg occupies word 0, table words 1..4, out words 4..6.
        assert_eq!(assembly.program.instrs[0].imm, 1);
        assert_eq!(assembly.program.instrs[1].imm, 4);
        assert_eq!(assembly.program.data.len(), 6);
        assert_eq!(assembly.program.data[1], 10);
        assert_eq!(assembly.args.len(), 1);
        assert_eq!(assembly.args[0].name, "n");
        assert_eq!(assembly.args[0].default, 3);
    }

    #[test]
    fn with_args_overrides_defaults() {
        let assembly = assemble("args", ".arg n = 3\nli r1, n\nld r1, r1\nhalt\n").unwrap();
        assert_eq!(assembly.program.data[0], 3);
        let loaded = assembly.with_args(&[99]).unwrap();
        assert_eq!(loaded.data[0], 99);
        // Too many values is an error naming the declared arguments.
        let err = assembly.with_args(&[1, 2]).unwrap_err();
        assert!(err.contains("n"), "{err}");
    }

    #[test]
    fn fword_and_float_fli() {
        let program = assemble_program(
            "fp",
            "
            grid: .fword 1.5, -2.0
                  fli f1, 0.25
                  halt
            ",
        )
        .unwrap();
        assert_eq!(f64::from_bits(program.data[0]), 1.5);
        assert_eq!(f64::from_bits(program.data[1]), -2.0);
        assert_eq!(f64::from_bits(program.instrs[0].imm as u64), 0.25);
    }

    #[test]
    fn branch_with_two_registers_and_target() {
        let program = assemble_program("b2", "beq r1, r2, done\nnop\ndone: halt\n").unwrap();
        let b = program.instrs[0];
        assert!(b.src1.is_some() && b.src2.is_some());
        assert_eq!(b.imm, 2);
    }

    #[test]
    fn memory_offsets_default_to_zero() {
        let program = assemble_program("mem", "ld r1, r2\nst r2, r1, 8\nhalt\n").unwrap();
        assert_eq!(program.instrs[0].imm, 0);
        assert_eq!(program.instrs[1].imm, 8);
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (source, line, needle) in [
            ("li r1, #1\nbogus r2\nhalt\n", 2, "unknown mnemonic"),
            ("li r99, #1\nhalt\n", 1, "out of range"),
            ("li r1, missing\nhalt\n", 1, "undefined symbol"),
            ("li r1, #1\nli r1\nhalt\n", 2, "missing"),
            (
                "x: .word 1\nx: .word 2\nli r1, #0\nhalt\n",
                2,
                "defined twice",
            ),
            (".bogus 3\nhalt\n", 1, "unknown directive"),
            ("add r1, r2, 5\nhalt\n", 1, "must be a register"),
            ("li r1, #1\n", 0, "halt"),
        ] {
            let err = assemble("bad", source).unwrap_err();
            assert_eq!(err.line, line, "{source:?} -> {err}");
            assert!(err.message.contains(needle), "{source:?} -> {err}");
        }
    }

    #[test]
    fn args_must_precede_data() {
        let err = assemble("late", "x: .word 1\n.arg n = 2\nhalt\n").unwrap_err();
        assert!(err.message.contains(".arg"), "{err}");
    }

    #[test]
    fn disassembly_reassembles_to_identical_instructions() {
        let source = "
        .arg n = 4
        buf:    .zero 8
                li r1, n
                ld r1, r1
                li r2, buf
                fli f0, 0.0
        loop:   fld f1, r2
                fadd f0, f0, f1
                addi r2, r2, #1
                addi r1, r1, #-1
                bgt r1, loop
                fst r2, f0, 16
                halt
        ";
        let first = assemble("roundtrip", source).unwrap();
        let listing = first.program.disassemble();
        let second = assemble_program("roundtrip", &listing).unwrap();
        assert_eq!(first.program.instrs, second.instrs);
    }
}
