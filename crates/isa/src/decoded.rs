//! Decode-once execution traces.
//!
//! Every figure of the paper sweeps the *same* program across many
//! (policy, machine-config) points.  The committed instruction stream of the
//! out-of-order simulator is identical for all of them — wrong paths are
//! squashed, precise exceptions re-execute from the faulting instruction —
//! so everything the architectural emulator computes (branch directions,
//! effective addresses, result values, register kill positions) can be
//! captured **once per program** and replayed by every lane of a sweep.
//!
//! [`DecodedTrace`] is that capture: one emulator pass recorded as
//! struct-of-arrays columns indexed by *committed position* (emulator step
//! `k` is simulator commit position `k`).  The replay front-end in
//! `earlyreg-sim` walks a cursor through it during fetch, tags each
//! correct-path instruction with its trace index, and the execute stage reads
//! outcomes from the columns instead of recomputing them.  Wrong-path
//! instructions (fetched past a branch whose prediction disagrees with the
//! recorded direction) are executed live, exactly as without a trace, so
//! simulated timing and statistics are bit-identical either way.
//!
//! The trace also records the per-instruction register **kill events** (which
//! logical-register version sees its true last use at each commit position) —
//! the same future knowledge the oracle release scheme derives — so one
//! emulator pass serves both the replay front-end and oracle-style schemes.
//!
//! Traces are identified by a content [`fingerprint`](DecodedTrace::fingerprint)
//! over all columns.  Because a trace is a pure function of (program,
//! capture budget), the experiment cache's `CacheKey` — which already hashes
//! the canonical program and the instruction budget — subsumes it; replay
//! needs no cache-version bump precisely because it is bit-identical.

use crate::program::Program;
use crate::reg::{ArchReg, RegClass};
use crate::Emulator;

/// Sentinel trace index for instructions not covered by a trace (wrong-path
/// fetches, or correct-path fetches past the capture budget).
pub const NO_TRACE: u32 = u32::MAX;

/// One register kill event: at committed position `pos`, the live version of
/// logical register `reg` sees its true last use.  Mirrors (and feeds) the
/// oracle scheme's commit-ordered kill plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillEvent {
    /// Commit position (index into the committed instruction stream).
    pub pos: u32,
    /// The logical register whose live version dies.
    pub reg: ArchReg,
    /// True when the dying version is the one *defined at* `pos` (a value
    /// that is never read); false when `pos` is its last read.
    pub own_def: bool,
}

/// A decoded, fully resolved execution trace of one program — see the module
/// documentation.  Columns are parallel arrays indexed by committed position.
#[derive(Debug)]
pub struct DecodedTrace {
    /// Static instruction index of each committed instruction.
    pcs: Vec<u32>,
    /// The next committed PC (branch directions and jump targets resolved).
    next_pcs: Vec<u32>,
    /// Outcome payload: destination value bits for value-producing
    /// instructions, stored bits for stores, 0 otherwise.
    payloads: Vec<u64>,
    /// Effective word address of memory operations (`NO_TRACE` = none).
    mem_addrs: Vec<u32>,
    /// Resolved conditional-branch directions, one bit per position (false
    /// for everything that is not a conditional branch).
    taken_bits: Vec<u64>,
    /// Register kill events, sorted by commit position (stable).
    kills: Vec<KillEvent>,
    /// True when the capture reached the program's `Halt` (the trace covers
    /// the complete execution); false when the step budget ran out first.
    halted: bool,
    /// Content fingerprint over all columns.
    fingerprint: u64,
}

impl DecodedTrace {
    /// Capture a trace by running the architectural emulator for at most
    /// `max_steps` instructions (or to halt, whichever comes first).
    ///
    /// # Panics
    /// Panics if the program or its memory image does not fit the compact
    /// `u32` column encoding (programs here are orders of magnitude smaller).
    pub fn capture(program: &Program, max_steps: u64) -> DecodedTrace {
        assert!(
            program.len() < NO_TRACE as usize && program.memory_words < NO_TRACE as usize,
            "program too large for the compact trace encoding"
        );
        let cap = max_steps.min(NO_TRACE as u64 - 1) as usize;
        let mut trace = DecodedTrace {
            pcs: Vec::with_capacity(cap.min(1 << 20)),
            next_pcs: Vec::with_capacity(cap.min(1 << 20)),
            payloads: Vec::with_capacity(cap.min(1 << 20)),
            mem_addrs: Vec::with_capacity(cap.min(1 << 20)),
            taken_bits: Vec::new(),
            kills: Vec::new(),
            halted: false,
            fingerprint: 0,
        };

        // Per logical-register version: position of the live definition
        // (-1 = initial mapping) and its last read, if any — the same
        // last-use bookkeeping the oracle kill plan performs.
        #[derive(Clone, Copy)]
        struct VersionState {
            def: i64,
            last_read: Option<u32>,
        }
        let reset = VersionState {
            def: -1,
            last_read: None,
        };
        let mut versions: [Vec<VersionState>; 2] = [
            vec![reset; RegClass::Int.num_logical()],
            vec![reset; RegClass::Fp.num_logical()],
        ];

        let mut emu = Emulator::new(program);
        for pos in 0..cap {
            if emu.halted() {
                break;
            }
            let pos = pos as u32;
            let Some(instr) = program.fetch(emu.pc()).copied() else {
                break;
            };

            // Kill bookkeeping (reads before the definition: an instruction
            // reading its own destination reads the previous version).
            for src in [instr.src1, instr.src2].into_iter().flatten() {
                versions[src.class().index()][src.index()].last_read = Some(pos);
            }
            if let Some(dst) = instr.dst {
                let slot = &mut versions[dst.class().index()][dst.index()];
                let (kill_pos, own_def) = match (slot.def, slot.last_read) {
                    (_, Some(read)) => (read, false),
                    (def, None) if def >= 0 => (def as u32, true),
                    (_, None) => (0, false),
                };
                trace.kills.push(KillEvent {
                    pos: kill_pos,
                    reg: dst,
                    own_def,
                });
                *slot = VersionState {
                    def: i64::from(pos),
                    last_read: None,
                };
            }

            let Some(outcome) = emu.step() else {
                break;
            };
            let payload = if let Some(dst) = instr.dst {
                emu.state.read_raw(dst)
            } else if instr.op.is_store() {
                let addr = outcome.mem_addr.expect("stores have an address");
                emu.state.memory[addr]
            } else {
                0
            };
            if outcome.branch_taken == Some(true) {
                let word = pos as usize / 64;
                if word >= trace.taken_bits.len() {
                    trace.taken_bits.resize(word + 1, 0);
                }
                trace.taken_bits[word] |= 1u64 << (pos % 64);
            }
            trace.pcs.push(outcome.pc as u32);
            trace.next_pcs.push(outcome.next_pc as u32);
            trace.payloads.push(payload);
            trace
                .mem_addrs
                .push(outcome.mem_addr.map_or(NO_TRACE, |a| a as u32));
            if outcome.halted {
                break;
            }
        }
        trace.halted = emu.halted();
        trace.taken_bits.resize(trace.pcs.len().div_ceil(64), 0);
        // Kills are discovered at redefinition time; replay them in commit
        // order (stable, so same-position events keep discovery order).
        // Events discovered past the capture end are dropped: an unfinished
        // trace has no complete future and [`DecodedTrace::kill_events`]
        // callers must check [`DecodedTrace::halted`] anyway.
        let len = trace.pcs.len() as u32;
        trace.kills.retain(|k| k.pos < len.max(1));
        trace.kills.sort_by_key(|k| k.pos);
        trace.fingerprint = trace.compute_fingerprint();
        trace
    }

    /// Number of committed instructions covered.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True when the trace covers no instruction.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// True when the capture reached the program's `Halt` — the trace covers
    /// the complete execution and the kill events are the complete future.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Static instruction index at committed position `i`.
    #[inline]
    pub fn pc(&self, i: usize) -> usize {
        self.pcs[i] as usize
    }

    /// Next committed PC after position `i`.
    #[inline]
    pub fn next_pc(&self, i: usize) -> usize {
        self.next_pcs[i] as usize
    }

    /// Resolved direction of the conditional branch at position `i` (false
    /// when the instruction is not a conditional branch).
    #[inline]
    pub fn taken(&self, i: usize) -> bool {
        (self.taken_bits[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Outcome payload at position `i`: destination value bits, stored bits
    /// for stores, 0 otherwise.
    #[inline]
    pub fn payload(&self, i: usize) -> u64 {
        self.payloads[i]
    }

    /// Effective word address of the memory operation at position `i`.
    #[inline]
    pub fn mem_addr(&self, i: usize) -> Option<usize> {
        match self.mem_addrs[i] {
            NO_TRACE => None,
            a => Some(a as usize),
        }
    }

    /// The register kill events, sorted by commit position.  Only a halted
    /// trace carries the *complete* future an oracle needs.
    pub fn kill_events(&self) -> &[KillEvent] {
        &self.kills
    }

    /// Content fingerprint over every column (FNV-1a), computed at capture.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Approximate resident size in bytes (for capacity planning and the
    /// benchmark report).
    pub fn memory_bytes(&self) -> usize {
        self.pcs.len() * (4 + 4 + 8 + 4)
            + self.taken_bits.len() * 8
            + self.kills.len() * std::mem::size_of::<KillEvent>()
    }

    fn compute_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        mix(self.pcs.len() as u64);
        mix(self.halted as u64);
        for i in 0..self.pcs.len() {
            mix(u64::from(self.pcs[i]));
            mix(u64::from(self.next_pcs[i]));
            mix(self.payloads[i]);
            mix(u64::from(self.mem_addrs[i]));
        }
        for &w in &self.taken_bits {
            mix(w);
        }
        for k in &self.kills {
            mix(u64::from(k.pos));
            mix(k.reg.index() as u64 ^ ((k.reg.class() == RegClass::Fp) as u64) << 8);
            mix(k.own_def as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::BranchCond;

    fn loop_program(n: i64) -> Program {
        let mut b = ProgramBuilder::new("trace-loop");
        let i = ArchReg::int(1);
        let acc = ArchReg::int(2);
        let base = ArchReg::int(3);
        b.li(i, n);
        b.li(acc, 0);
        b.li(base, 0);
        let top = b.here();
        b.add(acc, acc, i);
        b.addi(i, i, -1);
        b.branch(BranchCond::Gt, i, None, top);
        b.store_int(base, 0, acc);
        b.load_int(i, base, 0);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn capture_matches_emulation() {
        let p = loop_program(5);
        let trace = DecodedTrace::capture(&p, 1 << 20);
        assert!(trace.halted());
        // 3 li + 5*(add,addi,branch) + store + load + halt = 21.
        assert_eq!(trace.len(), 21);
        // Every position chains: next_pc(i) == pc(i+1).
        for i in 0..trace.len() - 1 {
            assert_eq!(trace.next_pc(i), trace.pc(i + 1), "position {i}");
        }
        // The loop branch is taken 4 times, not taken once.
        let taken: usize = (0..trace.len()).filter(|&i| trace.taken(i)).count();
        assert_eq!(taken, 4);
        // The store and load hit address 0 and move the final accumulator.
        let store_pos = (0..trace.len())
            .find(|&i| p.instrs[trace.pc(i)].op.is_store())
            .unwrap();
        assert_eq!(trace.mem_addr(store_pos), Some(0));
        assert_eq!(trace.payload(store_pos), 15); // 5+4+3+2+1
        let load_pos = store_pos + 1;
        assert_eq!(trace.payload(load_pos), 15);
    }

    #[test]
    fn budget_capped_capture_is_a_prefix() {
        let p = loop_program(100);
        let full = DecodedTrace::capture(&p, 1 << 20);
        let partial = DecodedTrace::capture(&p, 10);
        assert!(!partial.halted());
        assert_eq!(partial.len(), 10);
        for i in 0..partial.len() {
            assert_eq!(partial.pc(i), full.pc(i));
            assert_eq!(partial.next_pc(i), full.next_pc(i));
            assert_eq!(partial.payload(i), full.payload(i));
            assert_eq!(partial.mem_addr(i), full.mem_addr(i));
            assert_eq!(partial.taken(i), full.taken(i));
        }
        assert_ne!(partial.fingerprint(), full.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let p = loop_program(7);
        let a = DecodedTrace::capture(&p, 1 << 20);
        let b = DecodedTrace::capture(&p, 1 << 20);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other = DecodedTrace::capture(&loop_program(8), 1 << 20);
        assert_ne!(a.fingerprint(), other.fingerprint());
    }

    #[test]
    fn kill_events_are_commit_ordered_and_complete() {
        let p = loop_program(3);
        let trace = DecodedTrace::capture(&p, 1 << 20);
        assert!(trace.halted());
        let kills = trace.kill_events();
        assert!(!kills.is_empty());
        assert!(kills.windows(2).all(|w| w[0].pos <= w[1].pos));
        // Every redefinition in the committed stream produced one event.
        let redefs = (0..trace.len())
            .filter(|&i| p.instrs[trace.pc(i)].dst.is_some())
            .count();
        assert_eq!(kills.len(), redefs);
    }
}
