//! Committed-instruction trace records.
//!
//! The integration tests compare the out-of-order simulator against the
//! architectural emulator.  For most tests comparing the *final* state is
//! enough, but for debugging divergences it is far more useful to compare the
//! committed instruction streams record-by-record; this module provides the
//! record type and a bounded collector for that purpose.

use crate::instr::Instruction;
use serde::{Deserialize, Serialize};

/// One committed (architecturally executed) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Dynamic instruction number (0-based, committed order).
    pub seq: u64,
    /// Static instruction index (program counter).
    pub pc: usize,
    /// Destination register value written, as a raw 64-bit pattern
    /// (`None` when the instruction writes no register).
    pub dst_value: Option<u64>,
    /// For conditional branches: whether the branch was taken.
    pub branch_taken: Option<bool>,
    /// For memory operations: the effective word address.
    pub mem_addr: Option<usize>,
}

/// A bounded collector of [`TraceRecord`]s.
///
/// Collection stops silently once `capacity` records have been gathered so
/// that long runs do not exhaust memory; `truncated()` reports whether that
/// happened.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    records: Vec<TraceRecord>,
    capacity: usize,
    seen: u64,
}

impl TraceCollector {
    /// Create a collector that keeps at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceCollector {
            records: Vec::with_capacity(capacity.min(4096)),
            capacity,
            seen: 0,
        }
    }

    /// Record one committed instruction.
    pub fn push(&mut self, record: TraceRecord) {
        self.seen += 1;
        if self.records.len() < self.capacity {
            self.records.push(record);
        }
    }

    /// Records collected so far (up to the capacity).
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Total records offered (collected or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// True if records were dropped because the capacity was reached.
    pub fn truncated(&self) -> bool {
        self.seen > self.records.len() as u64
    }

    /// Find the first position where two traces differ, if any.
    pub fn first_divergence(a: &[TraceRecord], b: &[TraceRecord]) -> Option<usize> {
        let n = a.len().min(b.len());
        (0..n).find(|&i| a[i] != b[i]).or({
            if a.len() != b.len() {
                Some(n)
            } else {
                None
            }
        })
    }
}

/// Helper to build a [`TraceRecord`] from an instruction plus its outcome.
pub fn record_for(
    seq: u64,
    pc: usize,
    instr: &Instruction,
    dst_value: Option<u64>,
    branch_taken: Option<bool>,
    mem_addr: Option<usize>,
) -> TraceRecord {
    debug_assert!(
        instr.dst.is_none() || dst_value.is_some(),
        "instruction with a destination must supply its result value"
    );
    TraceRecord {
        seq,
        pc,
        dst_value,
        branch_taken,
        mem_addr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, pc: usize) -> TraceRecord {
        TraceRecord {
            seq,
            pc,
            dst_value: Some(seq),
            branch_taken: None,
            mem_addr: None,
        }
    }

    #[test]
    fn collector_respects_capacity() {
        let mut c = TraceCollector::new(3);
        for i in 0..10 {
            c.push(rec(i, i as usize));
        }
        assert_eq!(c.records().len(), 3);
        assert_eq!(c.seen(), 10);
        assert!(c.truncated());
    }

    #[test]
    fn collector_without_overflow_is_not_truncated() {
        let mut c = TraceCollector::new(16);
        for i in 0..5 {
            c.push(rec(i, i as usize));
        }
        assert!(!c.truncated());
        assert_eq!(c.records().len(), 5);
    }

    #[test]
    fn divergence_detection() {
        let a: Vec<_> = (0..5).map(|i| rec(i, i as usize)).collect();
        let mut b = a.clone();
        assert_eq!(TraceCollector::first_divergence(&a, &b), None);
        b[3].dst_value = Some(999);
        assert_eq!(TraceCollector::first_divergence(&a, &b), Some(3));
        let shorter = &a[..2];
        assert_eq!(TraceCollector::first_divergence(&a, shorter), Some(2));
    }
}
