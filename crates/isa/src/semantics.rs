//! Shared operational semantics.
//!
//! Both the architectural emulator (the golden model) and the execute stage of
//! the cycle-level simulator call into these functions, so functional
//! behaviour can never diverge between them.  All operations are fully
//! deterministic: integer arithmetic wraps, division by zero yields zero, and
//! memory addresses wrap around the (word-addressed) data memory.

use crate::instr::{BranchCond, Opcode};

/// Result of executing one instruction's dataflow (no architectural side
/// effects applied yet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecValue {
    /// An integer result destined for an integer register.
    Int(i64),
    /// A floating-point result destined for an FP register.
    Fp(f64),
    /// No register result (stores, branches, nop, halt).
    None,
}

impl ExecValue {
    /// Extract the integer value (panics if this is not an integer result).
    pub fn unwrap_int(self) -> i64 {
        match self {
            ExecValue::Int(v) => v,
            other => panic!("expected an integer result, got {other:?}"),
        }
    }

    /// Extract the FP value (panics if this is not an FP result).
    pub fn unwrap_fp(self) -> f64 {
        match self {
            ExecValue::Fp(v) => v,
            other => panic!("expected an FP result, got {other:?}"),
        }
    }
}

/// Compute the register result of a non-memory, non-control opcode.
///
/// `a_int`/`b_int` are the integer source operands (zero when the operand is
/// absent), `a_fp`/`b_fp` the FP source operands, `imm` the immediate.
/// Memory operations must not be passed here (their value comes from the
/// memory system); control instructions return [`ExecValue::None`].
pub fn compute(op: Opcode, a_int: i64, b_int: i64, a_fp: f64, b_fp: f64, imm: i64) -> ExecValue {
    use Opcode::*;
    match op {
        IAdd => ExecValue::Int(a_int.wrapping_add(b_int)),
        ISub => ExecValue::Int(a_int.wrapping_sub(b_int)),
        IAnd => ExecValue::Int(a_int & b_int),
        IOr => ExecValue::Int(a_int | b_int),
        IXor => ExecValue::Int(a_int ^ b_int),
        IShl => ExecValue::Int(a_int.wrapping_shl((b_int & 63) as u32)),
        IShr => ExecValue::Int(a_int.wrapping_shr((b_int & 63) as u32)),
        ISlt => ExecValue::Int((a_int < b_int) as i64),
        ISeq => ExecValue::Int((a_int == b_int) as i64),
        IAddImm => ExecValue::Int(a_int.wrapping_add(imm)),
        IAndImm => ExecValue::Int(a_int & imm),
        IXorImm => ExecValue::Int(a_int ^ imm),
        IShlImm => ExecValue::Int(a_int.wrapping_shl((imm & 63) as u32)),
        IShrImm => ExecValue::Int(a_int.wrapping_shr((imm & 63) as u32)),
        ILoadImm => ExecValue::Int(imm),
        IMul => ExecValue::Int(a_int.wrapping_mul(b_int)),
        IDiv => ExecValue::Int(if b_int == 0 {
            0
        } else {
            a_int.wrapping_div(b_int)
        }),
        FAdd => ExecValue::Fp(a_fp + b_fp),
        FSub => ExecValue::Fp(a_fp - b_fp),
        FAbs => ExecValue::Fp(a_fp.abs()),
        FNeg => ExecValue::Fp(-a_fp),
        FCmpLt => ExecValue::Int((a_fp < b_fp) as i64),
        FCmpEq => ExecValue::Int((a_fp == b_fp) as i64),
        ItoF => ExecValue::Fp(a_int as f64),
        FtoI => ExecValue::Int(saturating_f64_to_i64(a_fp)),
        FLoadImm => ExecValue::Fp(f64::from_bits(imm as u64)),
        FMul => ExecValue::Fp(a_fp * b_fp),
        FDiv => ExecValue::Fp(if b_fp == 0.0 { 0.0 } else { a_fp / b_fp }),
        FSqrt => ExecValue::Fp(a_fp.abs().sqrt()),
        Branch(_) | Jump | Halt | Nop => ExecValue::None,
        LoadInt | LoadFp | StoreInt | StoreFp => {
            panic!("memory operations are executed by the memory system, not compute()")
        }
    }
}

/// Saturating conversion from `f64` to `i64` (NaN maps to 0), mirroring the
/// behaviour of Rust's `as` cast so the emulator and simulator agree.
#[inline]
pub fn saturating_f64_to_i64(v: f64) -> i64 {
    v as i64
}

/// Effective word address of a memory operation: `base + imm`, wrapped into
/// `[0, mem_words)`.
#[inline]
pub fn effective_addr(base: i64, imm: i64, mem_words: usize) -> usize {
    debug_assert!(mem_words > 0, "data memory must not be empty");
    let raw = base.wrapping_add(imm);
    (raw.rem_euclid(mem_words as i64)) as usize
}

/// Whether a conditional branch is taken given its (integer) operands.
#[inline]
pub fn branch_taken(cond: BranchCond, a: i64, b: i64) -> bool {
    cond.eval(a, b)
}

/// Convert a raw 64-bit memory word to an integer register value.
#[inline]
pub fn word_to_int(bits: u64) -> i64 {
    bits as i64
}

/// Convert a raw 64-bit memory word to an FP register value.
#[inline]
pub fn word_to_fp(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// Convert an integer register value to a raw memory word.
#[inline]
pub fn int_to_word(v: i64) -> u64 {
    v as u64
}

/// Convert an FP register value to a raw memory word.
#[inline]
pub fn fp_to_word(v: f64) -> u64 {
    v.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c_int(op: Opcode, a: i64, b: i64) -> i64 {
        compute(op, a, b, 0.0, 0.0, 0).unwrap_int()
    }

    fn c_fp(op: Opcode, a: f64, b: f64) -> f64 {
        compute(op, 0, 0, a, b, 0).unwrap_fp()
    }

    #[test]
    fn integer_ops() {
        assert_eq!(c_int(Opcode::IAdd, 2, 3), 5);
        assert_eq!(c_int(Opcode::ISub, 2, 3), -1);
        assert_eq!(c_int(Opcode::IAnd, 0b1100, 0b1010), 0b1000);
        assert_eq!(c_int(Opcode::IOr, 0b1100, 0b1010), 0b1110);
        assert_eq!(c_int(Opcode::IXor, 0b1100, 0b1010), 0b0110);
        assert_eq!(c_int(Opcode::IShl, 1, 4), 16);
        assert_eq!(c_int(Opcode::IShr, -16, 2), -4);
        assert_eq!(c_int(Opcode::ISlt, 1, 2), 1);
        assert_eq!(c_int(Opcode::ISlt, 2, 1), 0);
        assert_eq!(c_int(Opcode::ISeq, 7, 7), 1);
        assert_eq!(c_int(Opcode::IMul, 7, 6), 42);
        assert_eq!(c_int(Opcode::IDiv, 42, 6), 7);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(c_int(Opcode::IDiv, 42, 0), 0);
        assert_eq!(c_fp(Opcode::FDiv, 1.0, 0.0), 0.0);
    }

    #[test]
    fn wrapping_behaviour() {
        assert_eq!(c_int(Opcode::IAdd, i64::MAX, 1), i64::MIN);
        assert_eq!(c_int(Opcode::IMul, i64::MAX, 2), -2);
        // i64::MIN / -1 would overflow with a plain division.
        assert_eq!(c_int(Opcode::IDiv, i64::MIN, -1), i64::MIN);
    }

    #[test]
    fn immediate_ops() {
        assert_eq!(
            compute(Opcode::IAddImm, 10, 0, 0.0, 0.0, 32).unwrap_int(),
            42
        );
        assert_eq!(
            compute(Opcode::ILoadImm, 0, 0, 0.0, 0.0, -7).unwrap_int(),
            -7
        );
        assert_eq!(compute(Opcode::IShlImm, 3, 0, 0.0, 0.0, 2).unwrap_int(), 12);
        assert_eq!(
            compute(Opcode::IShrImm, -8, 0, 0.0, 0.0, 1).unwrap_int(),
            -4
        );
        assert_eq!(
            compute(Opcode::IAndImm, 0xff, 0, 0.0, 0.0, 0x0f).unwrap_int(),
            0x0f
        );
        assert_eq!(compute(Opcode::IXorImm, 5, 0, 0.0, 0.0, 0).unwrap_int(), 5);
    }

    #[test]
    fn fp_ops() {
        assert_eq!(c_fp(Opcode::FAdd, 1.5, 2.5), 4.0);
        assert_eq!(c_fp(Opcode::FSub, 1.5, 2.5), -1.0);
        assert_eq!(c_fp(Opcode::FMul, 3.0, 4.0), 12.0);
        assert_eq!(c_fp(Opcode::FDiv, 12.0, 4.0), 3.0);
        assert_eq!(c_fp(Opcode::FAbs, -2.0, 0.0), 2.0);
        assert_eq!(c_fp(Opcode::FNeg, -2.0, 0.0), 2.0);
        assert_eq!(c_fp(Opcode::FSqrt, -9.0, 0.0), 3.0);
        assert_eq!(compute(Opcode::FCmpLt, 0, 0, 1.0, 2.0, 0).unwrap_int(), 1);
        assert_eq!(compute(Opcode::FCmpEq, 0, 0, 2.0, 2.0, 0).unwrap_int(), 1);
    }

    #[test]
    fn conversions() {
        assert_eq!(compute(Opcode::ItoF, 5, 0, 0.0, 0.0, 0).unwrap_fp(), 5.0);
        assert_eq!(compute(Opcode::FtoI, 0, 0, 5.9, 0.0, 0).unwrap_int(), 5);
        assert_eq!(
            compute(Opcode::FtoI, 0, 0, f64::NAN, 0.0, 0).unwrap_int(),
            0
        );
        let bits = 3.25f64.to_bits() as i64;
        assert_eq!(
            compute(Opcode::FLoadImm, 0, 0, 0.0, 0.0, bits).unwrap_fp(),
            3.25
        );
    }

    #[test]
    fn control_ops_produce_no_value() {
        assert_eq!(
            compute(Opcode::Branch(BranchCond::Eq), 1, 1, 0.0, 0.0, 0),
            ExecValue::None
        );
        assert_eq!(compute(Opcode::Jump, 0, 0, 0.0, 0.0, 0), ExecValue::None);
        assert_eq!(compute(Opcode::Nop, 0, 0, 0.0, 0.0, 0), ExecValue::None);
        assert_eq!(compute(Opcode::Halt, 0, 0, 0.0, 0.0, 0), ExecValue::None);
    }

    #[test]
    #[should_panic(expected = "memory operations")]
    fn memory_ops_panic_in_compute() {
        let _ = compute(Opcode::LoadInt, 0, 0, 0.0, 0.0, 0);
    }

    #[test]
    fn effective_addresses_wrap() {
        assert_eq!(effective_addr(10, 5, 1024), 15);
        assert_eq!(effective_addr(1020, 10, 1024), 6);
        assert_eq!(effective_addr(-3, 0, 1024), 1021);
        assert_eq!(
            effective_addr(i64::MAX, 1, 1024),
            (i64::MIN).rem_euclid(1024) as usize
        );
    }

    #[test]
    fn word_conversions_round_trip() {
        for v in [-1i64, 0, 1, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(word_to_int(int_to_word(v)), v);
        }
        for v in [0.0f64, -1.5, 3.25, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(word_to_fp(fp_to_word(v)), v);
        }
    }

    #[test]
    fn branch_taken_matches_cond_eval() {
        assert!(branch_taken(BranchCond::Lt, 1, 2));
        assert!(!branch_taken(BranchCond::Gt, 1, 2));
    }
}
