//! Structured program construction.
//!
//! [`ProgramBuilder`] is a tiny assembler: it lets the synthetic workload
//! generators emit instructions with forward/backward label references and
//! lay out the initial data image, then resolves everything into a validated
//! [`Program`].

use crate::instr::{BranchCond, Instruction, Opcode};
use crate::program::{Program, ProgramError, DEFAULT_MEMORY_WORDS};
use crate::reg::ArchReg;
use crate::semantics::{fp_to_word, int_to_word};

/// An opaque label handle returned by [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder for [`Program`]s.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<Instruction>,
    data: Vec<u64>,
    memory_words: usize,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Start a new program with the default data-memory size.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            instrs: Vec::new(),
            data: Vec::new(),
            memory_words: DEFAULT_MEMORY_WORDS,
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Override the data-memory size (in 64-bit words).
    pub fn set_memory_words(&mut self, words: usize) -> &mut Self {
        self.memory_words = words;
        self
    }

    /// Append raw words to the initial data image and return the base word
    /// address of the appended block.
    pub fn data_words(&mut self, values: &[u64]) -> i64 {
        let base = self.data.len() as i64;
        self.data.extend_from_slice(values);
        base
    }

    /// Append signed integers to the data image; returns the base address.
    pub fn data_i64(&mut self, values: &[i64]) -> i64 {
        let base = self.data.len() as i64;
        self.data.extend(values.iter().map(|&v| int_to_word(v)));
        base
    }

    /// Append doubles to the data image; returns the base address.
    pub fn data_f64(&mut self, values: &[f64]) -> i64 {
        let base = self.data.len() as i64;
        self.data.extend(values.iter().map(|&v| fp_to_word(v)));
        base
    }

    /// Reserve `words` zero-initialised words; returns the base address.
    pub fn data_zeroed(&mut self, words: usize) -> i64 {
        let base = self.data.len() as i64;
        self.data.extend(std::iter::repeat_n(0, words));
        base
    }

    /// Allocate a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the *next* emitted instruction.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label {:?} bound twice",
            label
        );
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Allocate a label already bound to the next instruction.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Index the next emitted instruction will receive.
    pub fn next_index(&self) -> usize {
        self.instrs.len()
    }

    /// Emit a raw instruction.
    pub fn push(&mut self, instr: Instruction) -> usize {
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    // ---- three-register integer ops -------------------------------------

    /// Emit a three-register integer operation (`IAdd`, `ISub`, `IMul`, ...).
    pub fn iop(&mut self, op: Opcode, dst: ArchReg, a: ArchReg, b: ArchReg) -> usize {
        self.push(Instruction {
            op,
            dst: Some(dst),
            src1: Some(a),
            src2: Some(b),
            imm: 0,
        })
    }

    /// Emit a register+immediate integer operation (`IAddImm`, `IShlImm`, ...).
    pub fn iopi(&mut self, op: Opcode, dst: ArchReg, a: ArchReg, imm: i64) -> usize {
        self.push(Instruction {
            op,
            dst: Some(dst),
            src1: Some(a),
            src2: None,
            imm,
        })
    }

    /// `dst = imm`
    pub fn li(&mut self, dst: ArchReg, imm: i64) -> usize {
        self.push(Instruction {
            op: Opcode::ILoadImm,
            dst: Some(dst),
            src1: None,
            src2: None,
            imm,
        })
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> usize {
        self.iop(Opcode::IAdd, dst, a, b)
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> usize {
        self.iop(Opcode::ISub, dst, a, b)
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> usize {
        self.iop(Opcode::IMul, dst, a, b)
    }

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: ArchReg, a: ArchReg, imm: i64) -> usize {
        self.iopi(Opcode::IAddImm, dst, a, imm)
    }

    /// `dst = a` (register copy via xor-immediate 0)
    pub fn mov(&mut self, dst: ArchReg, a: ArchReg) -> usize {
        self.iopi(Opcode::IXorImm, dst, a, 0)
    }

    // ---- FP ops ----------------------------------------------------------

    /// Emit a two-source FP operation (`FAdd`, `FSub`, `FMul`, `FDiv`, ...).
    pub fn fop(&mut self, op: Opcode, dst: ArchReg, a: ArchReg, b: ArchReg) -> usize {
        self.push(Instruction {
            op,
            dst: Some(dst),
            src1: Some(a),
            src2: Some(b),
            imm: 0,
        })
    }

    /// Emit a single-source FP-unit operation (`FAbs`, `FNeg`, `FSqrt`,
    /// `ItoF`, `FtoI`).
    pub fn fop1(&mut self, op: Opcode, dst: ArchReg, a: ArchReg) -> usize {
        self.push(Instruction {
            op,
            dst: Some(dst),
            src1: Some(a),
            src2: None,
            imm: 0,
        })
    }

    /// `dst = value` (FP immediate load)
    pub fn fli(&mut self, dst: ArchReg, value: f64) -> usize {
        self.push(Instruction {
            op: Opcode::FLoadImm,
            dst: Some(dst),
            src1: None,
            src2: None,
            imm: fp_to_word(value) as i64,
        })
    }

    /// `dst = a + b` (FP)
    pub fn fadd(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> usize {
        self.fop(Opcode::FAdd, dst, a, b)
    }

    /// `dst = a - b` (FP)
    pub fn fsub(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> usize {
        self.fop(Opcode::FSub, dst, a, b)
    }

    /// `dst = a * b` (FP)
    pub fn fmul(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> usize {
        self.fop(Opcode::FMul, dst, a, b)
    }

    /// `dst = a / b` (FP)
    pub fn fdiv(&mut self, dst: ArchReg, a: ArchReg, b: ArchReg) -> usize {
        self.fop(Opcode::FDiv, dst, a, b)
    }

    // ---- memory ----------------------------------------------------------

    /// `dst = memory[base + offset]` (integer load)
    pub fn load_int(&mut self, dst: ArchReg, base: ArchReg, offset: i64) -> usize {
        self.push(Instruction {
            op: Opcode::LoadInt,
            dst: Some(dst),
            src1: Some(base),
            src2: None,
            imm: offset,
        })
    }

    /// `dst = memory[base + offset]` (FP load)
    pub fn load_fp(&mut self, dst: ArchReg, base: ArchReg, offset: i64) -> usize {
        self.push(Instruction {
            op: Opcode::LoadFp,
            dst: Some(dst),
            src1: Some(base),
            src2: None,
            imm: offset,
        })
    }

    /// `memory[base + offset] = data` (integer store)
    pub fn store_int(&mut self, base: ArchReg, offset: i64, data: ArchReg) -> usize {
        self.push(Instruction {
            op: Opcode::StoreInt,
            dst: None,
            src1: Some(base),
            src2: Some(data),
            imm: offset,
        })
    }

    /// `memory[base + offset] = data` (FP store)
    pub fn store_fp(&mut self, base: ArchReg, offset: i64, data: ArchReg) -> usize {
        self.push(Instruction {
            op: Opcode::StoreFp,
            dst: None,
            src1: Some(base),
            src2: Some(data),
            imm: offset,
        })
    }

    // ---- control ---------------------------------------------------------

    /// Conditional branch comparing `a` against `b` (use `None` to compare
    /// against zero), jumping to `target` when the condition holds.
    pub fn branch(
        &mut self,
        cond: BranchCond,
        a: ArchReg,
        b: Option<ArchReg>,
        target: Label,
    ) -> usize {
        let idx = self.push(Instruction {
            op: Opcode::Branch(cond),
            dst: None,
            src1: Some(a),
            src2: b,
            imm: 0,
        });
        self.fixups.push((idx, target));
        idx
    }

    /// Unconditional jump to `target`.
    pub fn jump(&mut self, target: Label) -> usize {
        let idx = self.push(Instruction {
            op: Opcode::Jump,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
        });
        self.fixups.push((idx, target));
        idx
    }

    /// Stop the program.
    pub fn halt(&mut self) -> usize {
        self.push(Instruction::halt())
    }

    /// No operation.
    pub fn nop(&mut self) -> usize {
        self.push(Instruction::nop())
    }

    /// Resolve all labels and validate the resulting program.
    ///
    /// # Panics
    /// Panics if a referenced label was never bound (this is a programming
    /// error in the generator, not a data error).
    pub fn build(mut self) -> Result<Program, ProgramError> {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("label {label:?} referenced but never bound"));
            self.instrs[idx].imm = target as i64;
        }
        let program = Program::with_data(self.name, self.instrs, self.data, self.memory_words);
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;

    #[test]
    fn builds_a_count_down_loop() {
        let mut b = ProgramBuilder::new("loop");
        let counter = ArchReg::int(1);
        b.li(counter, 5);
        let top = b.here();
        b.addi(counter, counter, -1);
        b.branch(BranchCond::Gt, counter, None, top);
        b.halt();
        let p = b.build().expect("valid program");
        assert_eq!(p.len(), 4);
        // The backward branch must point to the addi instruction.
        assert_eq!(p.instrs[2].imm, 1);
    }

    #[test]
    fn forward_labels_are_resolved() {
        let mut b = ProgramBuilder::new("fwd");
        let r = ArchReg::int(2);
        let done = b.new_label();
        b.li(r, 0);
        b.branch(BranchCond::Eq, r, None, done);
        b.li(r, 99);
        b.bind(done);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.instrs[1].imm, 3);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.new_label();
        b.jump(l);
        b.halt();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn data_layout_addresses_are_sequential() {
        let mut b = ProgramBuilder::new("data");
        let a = b.data_i64(&[1, 2, 3]);
        let c = b.data_f64(&[1.5]);
        let z = b.data_zeroed(10);
        assert_eq!(a, 0);
        assert_eq!(c, 3);
        assert_eq!(z, 4);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.data.len(), 14);
        assert_eq!(p.data[0], 1);
        assert_eq!(f64::from_bits(p.data[3]), 1.5);
    }

    #[test]
    fn build_runs_program_validation() {
        let mut b = ProgramBuilder::new("nohalt");
        b.li(ArchReg::int(1), 1);
        assert!(matches!(b.build(), Err(ProgramError::NoHalt)));
    }

    #[test]
    fn mov_and_named_helpers_emit_expected_opcodes() {
        let mut b = ProgramBuilder::new("helpers");
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        let f1 = ArchReg::fp(1);
        let f2 = ArchReg::fp(2);
        b.li(r1, 3);
        b.mov(r2, r1);
        b.add(r1, r1, r2);
        b.fli(f1, 2.0);
        b.fmul(f2, f1, f1);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.instrs[1].op, Opcode::IXorImm);
        assert_eq!(p.instrs[2].op, Opcode::IAdd);
        assert_eq!(p.instrs[4].op, Opcode::FMul);
    }
}
