//! Smoke test for the paper's headline result (ICPP'02 Figures 10–11): at an
//! equal, pressure-bound physical-register count, committed IPC must order
//! **Extended ≥ Basic ≥ Conventional**. This is the core contribution of the
//! paper — if a change to the rename/release core breaks this ordering, the
//! reproduction no longer reproduces the paper, regardless of what the other
//! invariant suites say.

use earlyreg::core::ReleasePolicy;
use earlyreg::sim::{MachineConfig, RunLimits, Simulator};
use earlyreg::workloads::{workload_by_name, Scale, Workload};

/// 48+48 physical registers: the paper's most-quoted pressure point
/// (Figure 10 runs the whole suite there).
const REGISTERS: usize = 48;

fn ipc(workload: &Workload, policy: ReleasePolicy) -> f64 {
    let config = MachineConfig::icpp02(policy, REGISTERS, REGISTERS);
    let mut sim = Simulator::new(config, workload.program.clone());
    let stats = sim.run(RunLimits {
        max_instructions: 25_000,
        max_cycles: 3_000_000,
    });
    assert!(stats.committed > 1_000, "simulation made no progress");
    assert_eq!(
        stats.oracle_violations, 0,
        "simulation read a discarded value"
    );
    stats.ipc()
}

#[test]
fn oracle_beats_extended_beats_basic_beats_conventional_on_a_pressure_bound_workload() {
    // swim: loop-dominated FP code with many simultaneously-live values —
    // the class of workload the paper's Figure 11 shows gaining most.
    let swim = workload_by_name("swim", Scale::Smoke).expect("swim is in the suite");

    let conventional = ipc(&swim, ReleasePolicy::Conventional);
    let basic = ipc(&swim, ReleasePolicy::Basic);
    let extended = ipc(&swim, ReleasePolicy::Extended);
    let oracle = ipc(&swim, ReleasePolicy::Oracle);

    assert!(
        basic >= conventional,
        "headline ordering violated: basic IPC {basic:.4} < conventional IPC {conventional:.4}"
    );
    assert!(
        extended >= basic,
        "headline ordering violated: extended IPC {extended:.4} < basic IPC {basic:.4}"
    );
    // The oracle releases every register at its true last use — the ideal
    // curve no hardware mechanism can beat.
    assert!(
        oracle >= extended,
        "headline ordering violated: oracle IPC {oracle:.4} < extended IPC {extended:.4}"
    );
    // The ordering must also be materially visible at this register count,
    // not a tie: the paper reports double-digit gains for FP codes.
    assert!(
        extended >= conventional * 1.02,
        "extended IPC {extended:.4} shows no material gain over conventional {conventional:.4}"
    );
}

#[test]
fn headline_ordering_holds_on_an_assembled_real_kernel() {
    // box_blur: an assembled FP stencil (real loads/stores, label-resolved
    // branches) rather than a synthetic recurrence — the paper's effect must
    // survive on programs produced by the assembler front-end too.
    let blur = workload_by_name("box_blur", Scale::Smoke).expect("box_blur is registered");

    let conventional = ipc(&blur, ReleasePolicy::Conventional);
    let extended = ipc(&blur, ReleasePolicy::Extended);
    let oracle = ipc(&blur, ReleasePolicy::Oracle);

    assert!(
        extended >= conventional * 1.02,
        "extended IPC {extended:.4} shows no material gain over conventional {conventional:.4} on box_blur"
    );
    assert!(
        oracle >= extended * 0.98,
        "oracle IPC {oracle:.4} fell materially below extended {extended:.4} on box_blur"
    );
}

#[test]
fn counter_scheme_lands_between_conventional_and_basic() {
    // The counter-based scheme captures the basic mechanism's immediate
    // release/reuse wins without its Last-Uses CAM: it must never lose to
    // conventional (beyond noise) and never beat basic (beyond noise).
    let swim = workload_by_name("swim", Scale::Smoke).expect("swim is in the suite");

    let conventional = ipc(&swim, ReleasePolicy::Conventional);
    let basic = ipc(&swim, ReleasePolicy::Basic);
    let counter = ipc(&swim, ReleasePolicy::Counter);

    assert!(
        counter >= conventional * 0.98,
        "counter IPC {counter:.4} fell below conventional {conventional:.4}"
    );
    assert!(
        counter <= basic * 1.02,
        "counter IPC {counter:.4} implausibly beats the CAM-based basic {basic:.4}"
    );
}
