//! Property-based tests of the rename/release engine: random instruction
//! streams, random out-of-order branch resolutions, random mispredictions and
//! random precise exceptions must never violate the structural invariants
//! (free-list consistency, map/ownership consistency, Release Queue bounds) —
//! and a double release or use-after-free would panic inside the engine
//! itself.

use earlyreg::conformance::test_support;
use earlyreg::core::{ReleasePolicy, RenameConfig, RenameUnit};
use earlyreg::isa::{ArchReg, BranchCond, Instruction, Opcode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A compact, generatable description of one instruction.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Define an integer register (no sources).
    DefInt(u8),
    /// Define an FP register (no sources).
    DefFp(u8),
    /// Integer add reading two registers and writing one.
    AddInt(u8, u8, u8),
    /// FP multiply reading two registers and writing one.
    MulFp(u8, u8, u8),
    /// Store (reads two integer registers, no destination).
    Store(u8, u8),
    /// Conditional branch on an integer register.
    Branch(u8),
}

impl Op {
    fn to_instruction(self) -> Instruction {
        match self {
            Op::DefInt(d) => Instruction {
                op: Opcode::ILoadImm,
                dst: Some(ArchReg::int(d as usize % 32)),
                src1: None,
                src2: None,
                imm: 1,
            },
            Op::DefFp(d) => Instruction {
                op: Opcode::FLoadImm,
                dst: Some(ArchReg::fp(d as usize % 32)),
                src1: None,
                src2: None,
                imm: 0,
            },
            Op::AddInt(d, a, b) => Instruction {
                op: Opcode::IAdd,
                dst: Some(ArchReg::int(d as usize % 32)),
                src1: Some(ArchReg::int(a as usize % 32)),
                src2: Some(ArchReg::int(b as usize % 32)),
                imm: 0,
            },
            Op::MulFp(d, a, b) => Instruction {
                op: Opcode::FMul,
                dst: Some(ArchReg::fp(d as usize % 32)),
                src1: Some(ArchReg::fp(a as usize % 32)),
                src2: Some(ArchReg::fp(b as usize % 32)),
                imm: 0,
            },
            Op::Store(a, b) => Instruction {
                op: Opcode::StoreInt,
                dst: None,
                src1: Some(ArchReg::int(a as usize % 32)),
                src2: Some(ArchReg::int(b as usize % 32)),
                imm: 0,
            },
            Op::Branch(a) => Instruction {
                op: Opcode::Branch(BranchCond::Ne),
                dst: None,
                src1: Some(ArchReg::int(a as usize % 32)),
                src2: None,
                imm: 0,
            },
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::DefInt),
        any::<u8>().prop_map(Op::DefFp),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(d, a, b)| Op::AddInt(d, a, b)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(d, a, b)| Op::MulFp(d, a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Store(a, b)),
        any::<u8>().prop_map(Op::Branch),
    ]
}

/// Drive a rename unit through the instruction stream with a random
/// interleaving of renames, commits, branch resolutions (correct or
/// mispredicted) and occasional exceptions, checking the invariants after
/// every architectural event.
fn drive(policy: ReleasePolicy, phys: usize, ops: &[Op], seed: u64, exception_rate: f64) {
    let mut ru = RenameUnit::new(RenameConfig::icpp02(policy, phys, phys));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut in_flight: Vec<(earlyreg::core::InstrId, bool, bool)> = Vec::new(); // (id, is_branch, resolved)
    let mut next_op = 0usize;
    let mut cycle = 0u64;

    while next_op < ops.len() || !in_flight.is_empty() {
        cycle += 1;
        let action = rng.gen_range(0..100);

        // Rename a few instructions.
        if action < 45 && next_op < ops.len() && in_flight.len() < 100 {
            for _ in 0..rng.gen_range(1..=4usize) {
                if next_op >= ops.len() {
                    break;
                }
                let instr = ops[next_op].to_instruction();
                match ru.rename(&instr, cycle) {
                    Ok(renamed) => {
                        in_flight.push((renamed.id, instr.op.is_cond_branch(), false));
                        next_op += 1;
                    }
                    Err(_) => break, // stall: free registers by committing below
                }
            }
        } else if action < 70 {
            // Resolve a random unresolved branch (out of order), sometimes as
            // a misprediction.
            let unresolved: Vec<usize> = in_flight
                .iter()
                .enumerate()
                .filter(|(_, (_, is_branch, resolved))| *is_branch && !resolved)
                .map(|(i, _)| i)
                .collect();
            if let Some(&pick) = unresolved.get(
                rng.gen_range(0..unresolved.len().max(1))
                    .min(unresolved.len().saturating_sub(1)),
            ) {
                let (id, _, _) = in_flight[pick];
                if rng.gen_bool(0.3) {
                    ru.recover_branch_mispredict(id, cycle);
                    // Everything younger is gone.
                    in_flight.retain(|&(other, _, _)| other <= id);
                    next_op = ops.len().min(next_op); // squashed fetches are simply not replayed
                } else {
                    ru.resolve_branch_correct(id, cycle);
                }
                if let Some(entry) = in_flight.iter_mut().find(|(other, _, _)| *other == id) {
                    entry.2 = true;
                }
            }
        } else if action < 95 {
            // Commit from the head; branches must be resolved first.
            for _ in 0..rng.gen_range(1..=4usize) {
                let Some(&(id, is_branch, resolved)) = in_flight.first() else {
                    break;
                };
                if is_branch && !resolved {
                    ru.resolve_branch_correct(id, cycle);
                }
                ru.commit(id, cycle);
                in_flight.remove(0);
            }
        } else if rng.gen_bool(exception_rate) && !in_flight.is_empty() {
            ru.recover_exception(cycle);
            in_flight.clear();
        }

        ru.check_invariants()
            .unwrap_or_else(|e| panic!("invariant violated at cycle {cycle}: {e}"));
        if cycle > 50_000 {
            panic!("driver failed to make progress");
        }
    }
    ru.check_invariants().unwrap();
}

proptest! {
    #![proptest_config(test_support::cases(24))]

    #[test]
    fn extended_mechanism_invariants_hold_under_random_streams(
        ops in prop::collection::vec(op_strategy(), 20..200),
        seed in any::<u64>(),
    ) {
        drive(ReleasePolicy::Extended, 44, &ops, seed, 0.3);
    }

    #[test]
    fn basic_mechanism_invariants_hold_under_random_streams(
        ops in prop::collection::vec(op_strategy(), 20..200),
        seed in any::<u64>(),
    ) {
        drive(ReleasePolicy::Basic, 44, &ops, seed, 0.3);
    }

    #[test]
    fn conventional_invariants_hold_under_random_streams(
        ops in prop::collection::vec(op_strategy(), 20..150),
        seed in any::<u64>(),
    ) {
        drive(ReleasePolicy::Conventional, 40, &ops, seed, 0.2);
    }

    #[test]
    fn tiny_register_files_stall_but_never_corrupt(
        ops in prop::collection::vec(op_strategy(), 20..120),
        seed in any::<u64>(),
    ) {
        // 34 registers per class = 32 architectural + 2 rename buffers.
        drive(ReleasePolicy::Extended, 34, &ops, seed, 0.4);
    }

    #[test]
    fn counter_scheme_invariants_hold_under_random_streams(
        ops in prop::collection::vec(op_strategy(), 20..200),
        seed in any::<u64>(),
    ) {
        // The checkpoint-free counter scheme can be driven with raw rename
        // streams like the paper policies (the oracle cannot: it needs a
        // program trace, and is covered by the simulator-level property
        // tests instead).
        drive(ReleasePolicy::Counter, 44, &ops, seed, 0.3);
    }
}
