//! Cross-policy invariants over the whole suite: the release policy may only
//! change *when* registers are freed — never what the program computes — and
//! the early-release mechanisms must behave as the paper describes
//! (no conventional releases under the extended scheme, less idle occupancy,
//! IPC never worse than conventional beyond noise).

use earlyreg::core::ReleasePolicy;
use earlyreg::sim::{MachineConfig, RunLimits, SimStats, Simulator};
use earlyreg::workloads::{suite, Scale, Workload, WorkloadClass};

fn run(workload: &Workload, policy: ReleasePolicy, phys: usize) -> SimStats {
    let config = MachineConfig::icpp02(policy, phys, phys);
    let mut sim = Simulator::new(config, workload.program.clone());
    sim.run(RunLimits {
        max_instructions: 25_000,
        max_cycles: 3_000_000,
    })
}

#[test]
fn committed_work_is_identical_across_policies() {
    for workload in suite(Scale::Smoke) {
        let conv = run(&workload, ReleasePolicy::Conventional, 48);
        let basic = run(&workload, ReleasePolicy::Basic, 48);
        let ext = run(&workload, ReleasePolicy::Extended, 48);
        assert_eq!(conv.committed, basic.committed, "{}", workload.name());
        assert_eq!(conv.committed, ext.committed, "{}", workload.name());
        assert_eq!(
            conv.committed_branches,
            ext.committed_branches,
            "{}",
            workload.name()
        );
        assert_eq!(
            conv.committed_stores,
            ext.committed_stores,
            "{}",
            workload.name()
        );
    }
}

#[test]
fn early_release_never_hurts_ipc_beyond_noise() {
    for workload in suite(Scale::Smoke) {
        let conv = run(&workload, ReleasePolicy::Conventional, 48).ipc();
        let basic = run(&workload, ReleasePolicy::Basic, 48).ipc();
        let ext = run(&workload, ReleasePolicy::Extended, 48).ipc();
        assert!(
            basic >= conv * 0.97,
            "{}: basic {basic} vs conv {conv}",
            workload.name()
        );
        assert!(
            ext >= conv * 0.97,
            "{}: extended {ext} vs conv {conv}",
            workload.name()
        );
        assert!(
            ext >= basic * 0.97,
            "{}: extended {ext} vs basic {basic}",
            workload.name()
        );
    }
}

#[test]
fn fp_codes_gain_more_than_integer_codes_at_48_registers() {
    let mut fp_gain = Vec::new();
    let mut int_gain = Vec::new();
    for workload in suite(Scale::Smoke) {
        let conv = run(&workload, ReleasePolicy::Conventional, 48).ipc();
        let ext = run(&workload, ReleasePolicy::Extended, 48).ipc();
        let gain = ext / conv - 1.0;
        match workload.class() {
            WorkloadClass::Fp => fp_gain.push(gain),
            WorkloadClass::Int => int_gain.push(gain),
        }
    }
    let fp_avg = fp_gain.iter().sum::<f64>() / fp_gain.len() as f64;
    let int_avg = int_gain.iter().sum::<f64>() / int_gain.len() as f64;
    assert!(
        fp_avg > int_avg,
        "FP codes must benefit more from early release (fp {fp_avg:.3} vs int {int_avg:.3})"
    );
    assert!(
        fp_avg > 0.02,
        "FP codes must show a visible speedup at 48 registers, got {fp_avg:.3}"
    );
}

#[test]
fn extended_mechanism_never_uses_the_conventional_release_path() {
    for workload in suite(Scale::Smoke).into_iter().take(4) {
        let stats = run(&workload, ReleasePolicy::Extended, 48);
        assert_eq!(
            stats.release.int.conventional_releases,
            0,
            "{}",
            workload.name()
        );
        assert_eq!(
            stats.release.fp.conventional_releases,
            0,
            "{}",
            workload.name()
        );
        assert!(
            stats.release.int.total_early() + stats.release.fp.total_early() > 0,
            "{}: the extended mechanism released nothing early",
            workload.name()
        );
    }
}

#[test]
fn basic_mechanism_falls_back_under_speculation_but_extended_does_not() {
    // Branch-intensive integer code: the basic mechanism should be forced to
    // fall back to the conventional path often, which is exactly the gap the
    // extended mechanism closes (paper Section 4).
    let workloads = suite(Scale::Smoke);
    let gcc = workloads.iter().find(|w| w.name() == "gcc").unwrap();
    let basic = run(gcc, ReleasePolicy::Basic, 48);
    let ext = run(gcc, ReleasePolicy::Extended, 48);
    assert!(
        basic.release.int.fallback_to_conventional > 0,
        "basic must hit Case 2 fallbacks on a branchy workload"
    );
    assert!(
        ext.release.int.conditional_schedulings > 0,
        "extended must schedule conditional releases on a branchy workload"
    );
}

#[test]
fn idle_occupancy_shrinks_with_early_release() {
    for workload in suite(Scale::Smoke) {
        let conv = run(&workload, ReleasePolicy::Conventional, 96);
        let ext = run(&workload, ReleasePolicy::Extended, 96);
        let (conv_idle, ext_idle) = match workload.class() {
            WorkloadClass::Int => (conv.occupancy_int.avg_idle(), ext.occupancy_int.avg_idle()),
            WorkloadClass::Fp => (conv.occupancy_fp.avg_idle(), ext.occupancy_fp.avg_idle()),
        };
        assert!(
            ext_idle <= conv_idle,
            "{}: idle occupancy grew under early release ({conv_idle:.2} -> {ext_idle:.2})",
            workload.name()
        );
    }
}

#[test]
fn loose_register_files_make_the_policies_equivalent() {
    // With P >= L + N the processor never stalls for registers, so the
    // policies must converge (paper Section 2 / Figure 11 right-hand side).
    let workloads = suite(Scale::Smoke);
    let swim = workloads.iter().find(|w| w.name() == "swim").unwrap();
    let conv = run(swim, ReleasePolicy::Conventional, 160).ipc();
    let ext = run(swim, ReleasePolicy::Extended, 160).ipc();
    let diff = (ext / conv - 1.0).abs();
    assert!(
        diff < 0.02,
        "policies should converge for a loose file, difference {diff:.3}"
    );
}

#[test]
fn more_registers_never_reduce_ipc() {
    let workloads = suite(Scale::Smoke);
    for name in ["swim", "gcc"] {
        let w = workloads.iter().find(|w| w.name() == name).unwrap();
        for policy in earlyreg_core::registry::registered() {
            let tight = run(w, policy, 40).ipc();
            let medium = run(w, policy, 72).ipc();
            let loose = run(w, policy, 160).ipc();
            assert!(
                medium >= tight * 0.98,
                "{name}/{policy:?}: {tight} -> {medium}"
            );
            assert!(
                loose >= medium * 0.98,
                "{name}/{policy:?}: {medium} -> {loose}"
            );
        }
    }
}
