//! Pinned-statistics equivalence test.
//!
//! The per-cycle hot path of the simulator has been rewritten several times
//! (ring-buffer reorder structure, event-driven wakeup, allocation-free
//! release bookkeeping) under the contract that *simulated behaviour is
//! bit-identical*: every such change must leave `SimStats` untouched.  This
//! test pins the exact statistics of one golden (workload, policy, size)
//! point so any future hot-path change that silently alters simulation
//! behaviour fails loudly here instead of skewing experiment results.
//!
//! If a change *intentionally* alters simulated behaviour (a model fix, a
//! new feature), update the pinned values in the same commit and say so.

use earlyreg::core::ReleasePolicy;
use earlyreg::sim::{MachineConfig, RunLimits, SimStats, Simulator};
use earlyreg::workloads::{workload_by_name, Scale};

fn golden_point() -> SimStats {
    let workload = workload_by_name("swim", Scale::Smoke).expect("swim exists");
    let config = MachineConfig::icpp02(ReleasePolicy::Extended, 48, 48);
    let mut sim = Simulator::new(config, workload.program.clone());
    sim.run(RunLimits::instructions(20_000))
}

#[test]
fn golden_swim_extended_48_is_bit_identical() {
    let stats = golden_point();
    eprintln!("golden stats: {stats:#?}");

    // Core progress counters.
    assert_eq!(stats.cycles, 2876);
    assert_eq!(stats.committed, 3622);
    assert_eq!(stats.fetched, 3689);
    assert_eq!(stats.renamed, 3673);
    assert_eq!(stats.squashed, 51);
    assert!(stats.halted);

    // Instruction mix.
    assert_eq!(stats.committed_branches, 95);
    assert_eq!(stats.committed_loads, 855);
    assert_eq!(stats.committed_stores, 286);
    assert_eq!(stats.mispredicted_branches, 20);
    assert_eq!(stats.exceptions, 0);
    assert_eq!(stats.oracle_violations, 0);

    // Stall accounting.
    assert_eq!(stats.rename_stalls.free_list, 2202);

    // Release accounting (the paper's subject): both classes, every reason.
    assert_eq!(stats.release.int.early_at_lu_commit, 555);
    assert_eq!(stats.release.int.reuses, 61);
    assert_eq!(stats.release.int.branch_confirm_releases, 152);
    assert_eq!(stats.release.fp.early_at_lu_commit, 2169);
    assert_eq!(stats.release.fp.reuses, 227);
    assert_eq!(stats.release.fp.branch_confirm_releases, 76);
    assert_eq!(stats.release.int.conventional_releases, 0);
    assert_eq!(stats.release.fp.conventional_releases, 0);
}
