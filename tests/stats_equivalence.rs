//! Pinned-statistics equivalence test.
//!
//! The per-cycle hot path of the simulator has been rewritten several times
//! (ring-buffer reorder structure, event-driven wakeup, allocation-free
//! release bookkeeping) under the contract that *simulated behaviour is
//! bit-identical*: every such change must leave `SimStats` untouched.  This
//! test pins the exact statistics of one golden (workload, policy, size)
//! point so any future hot-path change that silently alters simulation
//! behaviour fails loudly here instead of skewing experiment results.
//!
//! If a change *intentionally* alters simulated behaviour (a model fix, a
//! new feature), update the pinned values in the same commit and say so.

use earlyreg::core::ReleasePolicy;
use earlyreg::sim::{MachineConfig, RunLimits, SimStats, Simulator};
use earlyreg::workloads::{workload_by_name, Scale};

fn golden_point(policy: ReleasePolicy) -> SimStats {
    let workload = workload_by_name("swim", Scale::Smoke).expect("swim exists");
    let config = MachineConfig::icpp02(policy, 48, 48);
    let mut sim = Simulator::new(config, workload.program.clone());
    sim.run(RunLimits::instructions(20_000))
}

#[test]
fn golden_swim_extended_48_is_bit_identical() {
    let stats = golden_point(ReleasePolicy::Extended);
    eprintln!("golden stats: {stats:#?}");

    // Core progress counters.
    assert_eq!(stats.cycles, 2876);
    assert_eq!(stats.committed, 3622);
    assert_eq!(stats.fetched, 3689);
    assert_eq!(stats.renamed, 3673);
    assert_eq!(stats.squashed, 51);
    assert!(stats.halted);

    // Instruction mix.
    assert_eq!(stats.committed_branches, 95);
    assert_eq!(stats.committed_loads, 855);
    assert_eq!(stats.committed_stores, 286);
    assert_eq!(stats.mispredicted_branches, 20);
    assert_eq!(stats.exceptions, 0);
    assert_eq!(stats.oracle_violations, 0);

    // Stall accounting.
    assert_eq!(stats.rename_stalls.free_list, 2202);

    // Release accounting (the paper's subject): both classes, every reason.
    assert_eq!(stats.release.int.early_at_lu_commit, 555);
    assert_eq!(stats.release.int.reuses, 61);
    assert_eq!(stats.release.int.branch_confirm_releases, 152);
    assert_eq!(stats.release.fp.early_at_lu_commit, 2169);
    assert_eq!(stats.release.fp.reuses, 227);
    assert_eq!(stats.release.fp.branch_confirm_releases, 76);
    assert_eq!(stats.release.int.conventional_releases, 0);
    assert_eq!(stats.release.fp.conventional_releases, 0);
}

/// Same golden point under the oracle scheme (PR 5's registry addition): the
/// kill-plan-driven upper bound must stay bit-identical too, including its
/// characteristic release signature — *everything* is released early at the
/// killing instruction's commit, nothing conventionally, nothing at branch
/// confirmation.
#[test]
fn golden_swim_oracle_48_is_bit_identical() {
    let stats = golden_point(ReleasePolicy::Oracle);
    eprintln!("golden oracle stats: {stats:#?}");

    assert_eq!(stats.cycles, 2876);
    assert_eq!(stats.committed, 3622);
    assert_eq!(stats.fetched, 3689);
    assert_eq!(stats.renamed, 3673);
    assert_eq!(stats.squashed, 51);
    assert!(stats.halted);
    assert_eq!(stats.mispredicted_branches, 20);
    assert_eq!(stats.exceptions, 0);
    assert_eq!(stats.oracle_violations, 0);
    assert_eq!(stats.rename_stalls.free_list, 2202);

    assert_eq!(stats.release.int.allocations, 775);
    assert_eq!(stats.release.int.early_at_lu_commit, 768);
    assert_eq!(stats.release.int.squash_mispredict_frees, 7);
    assert_eq!(stats.release.fp.allocations, 2480);
    assert_eq!(stats.release.fp.early_at_lu_commit, 2472);
    assert_eq!(stats.release.fp.squash_mispredict_frees, 8);
    for class in [&stats.release.int, &stats.release.fp] {
        assert_eq!(class.conventional_releases, 0);
        assert_eq!(class.branch_confirm_releases, 0);
        assert_eq!(class.reuses, 0);
        assert_eq!(class.fallback_to_conventional, 0);
    }
}

/// Same golden point under the counter scheme: its signature is heavy
/// fallback-to-conventional (unconfirmed last uses) with a meaningful early
/// slice, and more free-list stall cycles than the paper mechanisms.
#[test]
fn golden_swim_counter_48_is_bit_identical() {
    let stats = golden_point(ReleasePolicy::Counter);
    eprintln!("golden counter stats: {stats:#?}");

    assert_eq!(stats.cycles, 3197);
    assert_eq!(stats.committed, 3622);
    assert_eq!(stats.fetched, 3691);
    assert_eq!(stats.renamed, 3675);
    assert_eq!(stats.squashed, 53);
    assert!(stats.halted);
    assert_eq!(stats.mispredicted_branches, 20);
    assert_eq!(stats.exceptions, 0);
    assert_eq!(stats.oracle_violations, 0);
    assert_eq!(stats.rename_stalls.free_list, 2543);

    assert_eq!(stats.release.int.allocations, 687);
    assert_eq!(stats.release.int.reuses, 88);
    assert_eq!(stats.release.int.conventional_releases, 585);
    assert_eq!(stats.release.int.early_at_lu_commit, 95);
    assert_eq!(stats.release.int.fallback_to_conventional, 592);
    assert_eq!(stats.release.fp.allocations, 1609);
    assert_eq!(stats.release.fp.reuses, 873);
    assert_eq!(stats.release.fp.conventional_releases, 1124);
    assert_eq!(stats.release.fp.early_at_lu_commit, 475);
    assert_eq!(stats.release.fp.fallback_to_conventional, 1134);
}
