//! Pinned-statistics equivalence test.
//!
//! The per-cycle hot path of the simulator has been rewritten several times
//! (ring-buffer reorder structure, event-driven wakeup, allocation-free
//! release bookkeeping) under the contract that *simulated behaviour is
//! bit-identical*: every such change must leave `SimStats` untouched.  This
//! test pins the exact statistics of one golden (workload, policy, size)
//! point so any future hot-path change that silently alters simulation
//! behaviour fails loudly here instead of skewing experiment results.
//!
//! If a change *intentionally* alters simulated behaviour (a model fix, a
//! new feature), update the pinned values in the same commit and say so.
//!
//! The second half of this file extends the contract to the **trace-replay
//! front-end** (`Simulator::with_replay`): for every registered policy, on
//! pinned workload points, with exception injection, and over random
//! hazard-stress programs, replay must produce `SimStats` bit-identical to
//! the live front-end.  Replay skips value computation, never timing, so any
//! difference is a bug in the replay path.

use earlyreg::conformance::{compile, plan_blocks, test_support, HazardConfig};
use earlyreg::core::{registry, ReleasePolicy};
use earlyreg::sim::{
    decoded_trace_for, LaneGroup, MachineConfig, RunLimits, SimPool, SimStats, Simulator,
    TRACE_SLACK,
};
use earlyreg::workloads::{workload_by_name, Scale};
use proptest::prelude::*;
use std::sync::Arc;

fn golden_point(policy: ReleasePolicy) -> SimStats {
    let workload = workload_by_name("swim", Scale::Smoke).expect("swim exists");
    let config = MachineConfig::icpp02(policy, 48, 48);
    let mut sim = Simulator::new(config, workload.program.clone());
    sim.run(RunLimits::instructions(20_000))
}

#[test]
fn golden_swim_extended_48_is_bit_identical() {
    let stats = golden_point(ReleasePolicy::Extended);
    eprintln!("golden stats: {stats:#?}");

    // Core progress counters.
    assert_eq!(stats.cycles, 2876);
    assert_eq!(stats.committed, 3622);
    assert_eq!(stats.fetched, 3689);
    assert_eq!(stats.renamed, 3673);
    assert_eq!(stats.squashed, 51);
    assert!(stats.halted);

    // Instruction mix.
    assert_eq!(stats.committed_branches, 95);
    assert_eq!(stats.committed_loads, 855);
    assert_eq!(stats.committed_stores, 286);
    assert_eq!(stats.mispredicted_branches, 20);
    assert_eq!(stats.exceptions, 0);
    assert_eq!(stats.oracle_violations, 0);

    // Stall accounting.
    assert_eq!(stats.rename_stalls.free_list, 2202);

    // Release accounting (the paper's subject): both classes, every reason.
    assert_eq!(stats.release.int.early_at_lu_commit, 555);
    assert_eq!(stats.release.int.reuses, 61);
    assert_eq!(stats.release.int.branch_confirm_releases, 152);
    assert_eq!(stats.release.fp.early_at_lu_commit, 2169);
    assert_eq!(stats.release.fp.reuses, 227);
    assert_eq!(stats.release.fp.branch_confirm_releases, 76);
    assert_eq!(stats.release.int.conventional_releases, 0);
    assert_eq!(stats.release.fp.conventional_releases, 0);
}

/// Same golden point under the oracle scheme (PR 5's registry addition): the
/// kill-plan-driven upper bound must stay bit-identical too, including its
/// characteristic release signature — *everything* is released early at the
/// killing instruction's commit, nothing conventionally, nothing at branch
/// confirmation.
#[test]
fn golden_swim_oracle_48_is_bit_identical() {
    let stats = golden_point(ReleasePolicy::Oracle);
    eprintln!("golden oracle stats: {stats:#?}");

    assert_eq!(stats.cycles, 2876);
    assert_eq!(stats.committed, 3622);
    assert_eq!(stats.fetched, 3689);
    assert_eq!(stats.renamed, 3673);
    assert_eq!(stats.squashed, 51);
    assert!(stats.halted);
    assert_eq!(stats.mispredicted_branches, 20);
    assert_eq!(stats.exceptions, 0);
    assert_eq!(stats.oracle_violations, 0);
    assert_eq!(stats.rename_stalls.free_list, 2202);

    assert_eq!(stats.release.int.allocations, 775);
    assert_eq!(stats.release.int.early_at_lu_commit, 768);
    assert_eq!(stats.release.int.squash_mispredict_frees, 7);
    assert_eq!(stats.release.fp.allocations, 2480);
    assert_eq!(stats.release.fp.early_at_lu_commit, 2472);
    assert_eq!(stats.release.fp.squash_mispredict_frees, 8);
    for class in [&stats.release.int, &stats.release.fp] {
        assert_eq!(class.conventional_releases, 0);
        assert_eq!(class.branch_confirm_releases, 0);
        assert_eq!(class.reuses, 0);
        assert_eq!(class.fallback_to_conventional, 0);
    }
}

/// Same golden point under the counter scheme: its signature is heavy
/// fallback-to-conventional (unconfirmed last uses) with a meaningful early
/// slice, and more free-list stall cycles than the paper mechanisms.
#[test]
fn golden_swim_counter_48_is_bit_identical() {
    let stats = golden_point(ReleasePolicy::Counter);
    eprintln!("golden counter stats: {stats:#?}");

    assert_eq!(stats.cycles, 3197);
    assert_eq!(stats.committed, 3622);
    assert_eq!(stats.fetched, 3691);
    assert_eq!(stats.renamed, 3675);
    assert_eq!(stats.squashed, 53);
    assert!(stats.halted);
    assert_eq!(stats.mispredicted_branches, 20);
    assert_eq!(stats.exceptions, 0);
    assert_eq!(stats.oracle_violations, 0);
    assert_eq!(stats.rename_stalls.free_list, 2543);

    assert_eq!(stats.release.int.allocations, 687);
    assert_eq!(stats.release.int.reuses, 88);
    assert_eq!(stats.release.int.conventional_releases, 585);
    assert_eq!(stats.release.int.early_at_lu_commit, 95);
    assert_eq!(stats.release.int.fallback_to_conventional, 592);
    assert_eq!(stats.release.fp.allocations, 1609);
    assert_eq!(stats.release.fp.reuses, 873);
    assert_eq!(stats.release.fp.conventional_releases, 1124);
    assert_eq!(stats.release.fp.early_at_lu_commit, 475);
    assert_eq!(stats.release.fp.fallback_to_conventional, 1134);
}

// ---------------------------------------------------------------------------
// Assembled kernels: one pinned golden point per registered asm workload
// ---------------------------------------------------------------------------

/// One assembled kernel's pinned golden point, at the same
/// (extended, icpp02 48+48, Smoke, 20k budget) shape as the swim pins above.
struct AsmGolden {
    id: &'static str,
    cycles: u64,
    committed: u64,
    branches: u64,
    mispredicts: u64,
    loads: u64,
    stores: u64,
    free_list: u64,
    int_early: u64,
    fp_early: u64,
}

/// All five kernels halt naturally inside the budget, so these pin complete
/// executions — assembler, loader and `.arg` handling included.
/// Field order per row: cycles, committed, branches, mispredicts, loads,
/// stores, free-list stall cycles, int/fp early releases.
#[rustfmt::skip]
const ASM_GOLDEN: [AsmGolden; 5] = [
    AsmGolden { id: "matmul",    cycles: 3563, committed: 6520, branches: 649,  mispredicts: 69,  loads: 1089, stores: 192,  free_list: 2481, int_early: 2960, fp_early: 2472 },
    AsmGolden { id: "quicksort", cycles: 3923, committed: 5581, branches: 962,  mispredicts: 303, loads: 791,  stores: 643,  free_list: 1640, int_early: 2143, fp_early: 0 },
    AsmGolden { id: "sieve",     cycles: 5688, committed: 8242, branches: 2248, mispredicts: 307, loads: 533,  stores: 1185, free_list: 3326, int_early: 3513, fp_early: 0 },
    AsmGolden { id: "box_blur",  cycles: 6342, committed: 7095, branches: 761,  mispredicts: 60,  loads: 1513, stores: 760,  free_list: 5601, int_early: 2019, fp_early: 3525 },
    AsmGolden { id: "hazard",    cycles: 4375, committed: 4218, branches: 600,  mispredicts: 487, loads: 301,  stores: 301,  free_list: 843,  int_early: 2191, fp_early: 0 },
];

#[test]
fn golden_asm_kernels_extended_48_are_bit_identical() {
    for AsmGolden {
        id,
        cycles,
        committed,
        branches,
        mispredicts,
        loads,
        stores,
        free_list,
        int_early,
        fp_early,
    } in ASM_GOLDEN
    {
        let workload = workload_by_name(id, Scale::Smoke).expect("registered kernel");
        let config = MachineConfig::icpp02(ReleasePolicy::Extended, 48, 48);
        let mut sim = Simulator::new(config, workload.program.clone());
        let stats = sim.run(RunLimits::instructions(20_000));
        assert!(stats.halted, "{id}: must halt inside the budget");
        assert_eq!(stats.cycles, cycles, "{id}: cycles");
        assert_eq!(stats.committed, committed, "{id}: committed");
        assert_eq!(stats.committed_branches, branches, "{id}: branches");
        assert_eq!(
            stats.mispredicted_branches, mispredicts,
            "{id}: mispredicts"
        );
        assert_eq!(stats.committed_loads, loads, "{id}: loads");
        assert_eq!(stats.committed_stores, stores, "{id}: stores");
        assert_eq!(
            stats.rename_stalls.free_list, free_list,
            "{id}: free-list stalls"
        );
        assert_eq!(
            stats.release.int.early_at_lu_commit, int_early,
            "{id}: int early releases"
        );
        assert_eq!(
            stats.release.fp.early_at_lu_commit, fp_early,
            "{id}: fp early releases"
        );
    }
}

// ---------------------------------------------------------------------------
// Trace replay: bit-identical to the live front-end
// ---------------------------------------------------------------------------

/// Run one (config, program, budget) point through both front-ends and
/// assert bit-identical statistics.
fn assert_replay_equivalent(
    config: MachineConfig,
    program: &Arc<earlyreg::isa::Program>,
    budget: u64,
    label: &str,
) {
    let limits = RunLimits::instructions(budget);

    let mut live = Simulator::new(config, Arc::clone(program));
    let live_stats = live.run(limits);

    let trace = decoded_trace_for(program, budget.saturating_add(TRACE_SLACK));
    let mut replayed = Simulator::with_replay(config, Arc::clone(program), trace);
    assert!(replayed.replaying(), "{label}: replay cursor must be armed");
    let replay_stats = replayed.run(limits);

    assert_eq!(
        replay_stats, live_stats,
        "{label}: trace replay diverged from the live front-end"
    );
}

/// Every registered policy — built-ins and registry additions alike — must
/// replay bit-identically on the pinned swim point.
#[test]
fn replay_matches_live_for_every_registered_policy_on_swim() {
    let workload = workload_by_name("swim", Scale::Smoke).expect("swim exists");
    for policy in registry::registered() {
        let config = MachineConfig::icpp02(policy, 48, 48);
        assert_replay_equivalent(
            config,
            &workload.program,
            20_000,
            &format!("swim/{policy:?}"),
        );
    }
}

/// Same sweep over gcc, whose irregular branch cascade produces a different
/// misprediction/divergence profile than swim's loop nests.
#[test]
fn replay_matches_live_for_every_registered_policy_on_gcc() {
    let workload = workload_by_name("gcc", Scale::Smoke).expect("gcc exists");
    for policy in registry::registered() {
        let config = MachineConfig::icpp02(policy, 48, 48);
        assert_replay_equivalent(
            config,
            &workload.program,
            20_000,
            &format!("gcc/{policy:?}"),
        );
    }
}

/// Assembled kernels exercise decode paths the synthetic generators do not
/// (label-resolved branch targets, `.arg`-patched immediates, negative load
/// offsets); every registered policy must replay them bit-identically too.
#[test]
fn replay_matches_live_for_every_registered_policy_on_asm_kernels() {
    for id in ["matmul", "quicksort", "hazard"] {
        let workload = workload_by_name(id, Scale::Smoke).expect("registered kernel");
        for policy in registry::registered() {
            let config = MachineConfig::icpp02(policy, 48, 48);
            assert_replay_equivalent(
                config,
                &workload.program,
                20_000,
                &format!("{id}/{policy:?}"),
            );
        }
    }
}

/// Exception injection exercises the cursor rewind path: a precise
/// exception squashes the whole window and fetch restarts at the old head's
/// trace position.
#[test]
fn replay_matches_live_under_exception_injection() {
    let workload = workload_by_name("swim", Scale::Smoke).expect("swim exists");
    for policy in [
        ReleasePolicy::Conventional,
        ReleasePolicy::Extended,
        ReleasePolicy::Oracle,
    ] {
        let mut config = MachineConfig::icpp02(policy, 48, 48);
        config.exceptions.interval = Some(500);
        assert_replay_equivalent(
            config,
            &workload.program,
            20_000,
            &format!("swim+exc/{policy:?}"),
        );
    }
}

/// A deliberately tight capture budget forces the cursor off the end of the
/// trace mid-run; the tail must degrade to live execution bit-identically.
#[test]
fn replay_degrades_to_live_past_the_capture_budget() {
    let workload = workload_by_name("swim", Scale::Smoke).expect("swim exists");
    let config = MachineConfig::icpp02(ReleasePolicy::Extended, 48, 48);
    let limits = RunLimits::instructions(20_000);

    let mut live = Simulator::new(config, workload.program.clone());
    let live_stats = live.run(limits);

    // Capture only a fraction of the execution (swim Smoke commits ~3.6k
    // instructions), bypassing the memo cache (which would round up to an
    // earlier, longer capture of the same program).
    let short = Arc::new(earlyreg::isa::DecodedTrace::capture(
        &workload.program,
        1_000,
    ));
    assert!(!short.halted(), "short capture must stop before the end");
    let mut replayed = Simulator::with_replay(config, workload.program.clone(), short);
    let replay_stats = replayed.run(limits);

    assert_eq!(
        replay_stats, live_stats,
        "running past the capture budget must degrade to live execution"
    );
}

proptest! {
    #![proptest_config(test_support::cases(24))]

    /// Random hazard-stress programs (dependency chains, branches, memory
    /// aliasing from the conformance generator) replay bit-identically under
    /// every built-in policy and a small rename file that maximises
    /// stall/squash interleavings.
    #[test]
    fn replay_matches_live_on_random_hazard_programs(
        seed in 0u64..1u64 << 48,
        policy in prop::sample::select(vec![
            ReleasePolicy::Conventional,
            ReleasePolicy::Extended,
            ReleasePolicy::Oracle,
            ReleasePolicy::Counter,
        ]),
    ) {
        let hazard = HazardConfig::from_case_seed(seed);
        let blocks = plan_blocks(&hazard);
        let program = Arc::new(compile(&hazard, &blocks));
        let config = MachineConfig::small(policy, 40, 40);
        assert_replay_equivalent(config, &program, 10_000, &format!("hazard seed {seed}"));
    }
}

// ---------------------------------------------------------------------------
// Lane engine: lane-stepped stats bit-identical to sequential runs
// ---------------------------------------------------------------------------

/// Run `configs` over one program sequentially (each its own replaying
/// simulator), then through lane groups of width `width` drawing from one
/// shared pool, and assert the per-point `SimStats` are bit-identical.
/// `chunk` is deliberately odd-sized so round boundaries shear across
/// branch/squash activity rather than aligning with it.
fn assert_lane_width_equivalent(
    configs: &[MachineConfig],
    program: &Arc<earlyreg::isa::Program>,
    budget: u64,
    width: usize,
    chunk: u64,
    label: &str,
) {
    let limits = RunLimits::instructions(budget);
    let trace = decoded_trace_for(program, budget.saturating_add(TRACE_SLACK));

    let sequential: Vec<SimStats> = configs
        .iter()
        .map(|config| {
            let mut sim = Simulator::with_replay(*config, Arc::clone(program), Arc::clone(&trace));
            sim.run(limits)
        })
        .collect();

    let mut pool = SimPool::new();
    let mut laned: Vec<SimStats> = Vec::with_capacity(configs.len());
    for group_configs in configs.chunks(width) {
        let mut group = LaneGroup::new(chunk);
        for config in group_configs {
            group.push(
                Simulator::with_replay_pooled(
                    *config,
                    Arc::clone(program),
                    Arc::clone(&trace),
                    &mut pool,
                ),
                limits,
            );
        }
        let (stats, _) = group.into_results(&mut pool);
        laned.extend(stats);
    }

    assert_eq!(
        laned, sequential,
        "{label}: width-{width} lane stepping diverged from sequential runs"
    );
}

/// Every registered policy, lane-stepped against sequential, on a synthetic
/// workload (swim), an irregular-branch synthetic (gcc) and assembled
/// kernels — at lane widths 1, 2 and all-policies-in-one-group.
#[test]
fn lane_stepped_matches_sequential_for_every_registered_policy() {
    for id in ["swim", "gcc", "matmul", "quicksort", "hazard"] {
        let workload = workload_by_name(id, Scale::Smoke).expect("registered workload");
        let configs: Vec<MachineConfig> = registry::registered()
            .map(|policy| MachineConfig::icpp02(policy, 48, 48))
            .collect();
        for width in [1, 2, configs.len()] {
            assert_lane_width_equivalent(
                &configs,
                &workload.program,
                20_000,
                width,
                257,
                &format!("{id} all policies"),
            );
        }
    }
}

/// The `hazard` kernel mispredicts roughly one branch in nine cycles, so a
/// small lockstep chunk observes lanes both detached (wrong path) and
/// re-synchronised (back on trace) across rounds — pinning that divergence
/// detach/re-attach is exercised, not just tolerated, by the lane engine.
#[test]
fn lane_groups_observe_divergence_and_resync() {
    let workload = workload_by_name("hazard", Scale::Smoke).expect("registered kernel");
    let trace = decoded_trace_for(&workload.program, 20_000 + TRACE_SLACK);
    let mut pool = SimPool::new();
    let mut group = LaneGroup::new(16);
    for policy in [ReleasePolicy::Conventional, ReleasePolicy::Extended] {
        group.push(
            Simulator::with_replay_pooled(
                MachineConfig::icpp02(policy, 48, 48),
                workload.program.clone(),
                Arc::clone(&trace),
                &mut pool,
            ),
            RunLimits::instructions(20_000),
        );
    }
    let (_, lane_stats) = group.into_results(&mut pool);
    assert!(
        lane_stats.detached_lane_rounds > 0,
        "expected some rounds to start on a wrong path: {lane_stats:?}"
    );
    assert!(
        lane_stats.full_rounds > 0,
        "expected some rounds with every lane back on trace: {lane_stats:?}"
    );
}

/// Branch-storm executions grow the rename unit's journal/checkpoint scratch
/// high-water marks; the lane engine trims them at point boundaries so
/// pooled units do not carry peak capacity across a sweep.  Regression test
/// for the trim hook: capacity must come back down to the trim bound.
#[test]
fn scratch_capacity_is_trimmed_at_point_boundaries() {
    let workload = workload_by_name("hazard", Scale::Smoke).expect("registered kernel");
    let config = MachineConfig::icpp02(ReleasePolicy::Extended, 48, 48);
    let mut sim = Simulator::new(config, workload.program.clone());
    sim.run(RunLimits::instructions(20_000));
    let peak = sim.rename_unit().scratch_capacity();
    sim.trim_scratch();
    let trimmed = sim.rename_unit().scratch_capacity();
    assert!(
        trimmed <= 64 * 9,
        "trim must bound every scratch buffer (got {trimmed} entries)"
    );
    assert!(
        trimmed <= peak,
        "trim must never grow capacity ({peak} -> {trimmed})"
    );

    // The lane engine applies the same trim when a lane finishes: a group's
    // reclaimed carcasses must not exceed the trim bound either.
    let mut pool = SimPool::new();
    let mut group = LaneGroup::with_default_chunk();
    group.push(
        Simulator::new_pooled(
            MachineConfig::icpp02(ReleasePolicy::Extended, 48, 48),
            workload.program.clone(),
            &mut pool,
        ),
        RunLimits::instructions(20_000),
    );
    group.run();
    let (results, _) = group.into_results(&mut pool);
    assert_eq!(results.len(), 1);
}

proptest! {
    #![proptest_config(test_support::cases(16))]

    /// Random hazard-stress programs, lane-stepped at mixed widths against
    /// sequential replay.  The generator's branch cascades force lanes onto
    /// wrong paths (divergence detach) and back (re-sync) at uncorrelated
    /// times, and the odd chunk size shears lockstep round boundaries across
    /// those events; stats must stay bit-identical throughout.
    #[test]
    fn lane_stepping_matches_sequential_on_random_hazard_programs(
        seed in 0u64..1u64 << 48,
        width in 1usize..=4,
        chunk in prop::sample::select(vec![16u64, 129, 1024]),
    ) {
        let hazard = HazardConfig::from_case_seed(seed);
        let blocks = plan_blocks(&hazard);
        let program = Arc::new(compile(&hazard, &blocks));
        // Mixed policies *and* register-file sizes: lanes in one group reach
        // free-list stalls, squashes and halt at different rounds, forcing
        // ragged completion and divergence at uncorrelated times.
        let configs: Vec<MachineConfig> = [
            (ReleasePolicy::Conventional, 40),
            (ReleasePolicy::Extended, 44),
            (ReleasePolicy::Oracle, 40),
            (ReleasePolicy::Counter, 48),
        ]
        .into_iter()
        .map(|(policy, regs)| MachineConfig::small(policy, regs, regs))
        .collect();
        assert_lane_width_equivalent(
            &configs,
            &program,
            10_000,
            width,
            chunk,
            &format!("hazard seed {seed}"),
        );
    }
}
