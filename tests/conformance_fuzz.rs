//! Tier-1 entry points of the differential scheme-conformance fuzzer
//! (`crates/conformance`, `docs/FUZZING.md`).
//!
//! Three layers of proof:
//!
//! * property tests drive randomly-parameterised hazard-stress programs
//!   through the full lockstep harness under every registered policy;
//! * checked-in regression fixtures (`tests/fixtures/*.json`) — minimized
//!   reproducers of past failures — replay clean against every policy;
//! * the deliberately-broken release-at-rename mutant is caught by the
//!   harness and shrunk by the minimizer, proving the differential checks
//!   can actually detect unsafe release behaviour (a suite that has never
//!   caught anything proves nothing).

use earlyreg::conformance::{
    check_all_policies, check_program, check_with_scheme, compile, load_dir, minimize, plan_blocks,
    test_support, CheckConfig, HazardConfig, ReleaseAtRenameMutant,
};
use earlyreg::core::ReleasePolicy;
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

/// Cycle budget for the short programs these tests generate: far above any
/// clean run (a few thousand cycles), far below the CLI default so a
/// deadlocked candidate fails fast.
const TEST_MAX_CYCLES: u64 = 300_000;

fn hazard_strategy() -> impl Strategy<Value = HazardConfig> {
    (any::<u64>(), 1u32..8, 1u32..10, 2u32..8, 0u32..7).prop_map(
        |(seed, iterations, blocks, int_ws, fp_ws)| HazardConfig {
            seed,
            iterations,
            blocks,
            int_ws,
            fp_ws,
        },
    )
}

proptest! {
    #![proptest_config(test_support::cases(16))]

    #[test]
    fn hazard_programs_conform_under_every_policy(
        hazard in hazard_strategy(),
        registers in prop::sample::select(vec![36usize, 40, 48, 64]),
    ) {
        let program = Arc::new(compile(&hazard, &plan_blocks(&hazard)));
        let base = CheckConfig {
            phys_int: registers,
            phys_fp: registers,
            max_cycles: TEST_MAX_CYCLES,
            ..CheckConfig::new(ReleasePolicy::Conventional)
        };
        for (policy, result) in check_all_policies(&base, &program) {
            if let Err(violation) = result {
                prop_assert!(
                    false,
                    "policy {} violated conformance (registers {}, hazard {:?}): {}",
                    policy, registers, hazard, violation
                );
            }
        }
    }

    #[test]
    fn hazard_programs_conform_under_exception_injection(
        hazard in hazard_strategy(),
        interval in 23u64..300,
    ) {
        let program = Arc::new(compile(&hazard, &plan_blocks(&hazard)));
        let base = CheckConfig {
            exception_interval: Some(interval),
            max_cycles: TEST_MAX_CYCLES,
            ..CheckConfig::new(ReleasePolicy::Conventional)
        };
        for (policy, result) in check_all_policies(&base, &program) {
            if let Err(violation) = result {
                prop_assert!(
                    false,
                    "policy {} violated conformance under exceptions every {} \
                     (hazard {:?}): {}",
                    policy, interval, hazard, violation
                );
            }
        }
    }
}

/// The harness must catch the release-at-rename mutant, and the minimizer
/// must shrink the failure to a small reproducer that still fails — the
/// acceptance proof that the differential checks have teeth.
#[test]
fn mutant_is_caught_and_shrunk_to_a_minimal_fixture() {
    let check = CheckConfig {
        max_cycles: TEST_MAX_CYCLES,
        ..CheckConfig::new(ReleasePolicy::Conventional)
    };
    let run_mutant = |config: &HazardConfig, blocks: &[_]| {
        let program = Arc::new(compile(config, blocks));
        check_with_scheme(&check, &program, Box::new(ReleaseAtRenameMutant)).err()
    };

    // Find a failing case (the mutant is so unsafe the first seeds suffice).
    let mut found = None;
    for seed in 0..20u64 {
        let hazard = HazardConfig::from_case_seed(seed);
        let blocks = plan_blocks(&hazard);
        if let Some(violation) = run_mutant(&hazard, &blocks) {
            found = Some((hazard, blocks, violation));
            break;
        }
    }
    let (hazard, blocks, violation) =
        found.expect("the release-at-rename mutant must be caught within 20 random programs");
    let original_blocks = blocks.len();

    // Shrink it.
    let minimized = minimize(hazard, blocks, violation, 200, run_mutant);
    assert!(
        run_mutant(&minimized.config, &minimized.blocks).is_some(),
        "the minimized reproducer must still fail under the mutant"
    );
    assert!(
        minimized.blocks.len() <= original_blocks,
        "minimization must not grow the reproducer"
    );
    assert!(
        minimized.blocks.len() <= 2,
        "the mutant fails on almost anything, so the minimizer should reach \
         <= 2 blocks (got {} from {original_blocks})",
        minimized.blocks.len()
    );
    assert_eq!(minimized.config.iterations, 1);

    // And the real registry schemes pass the very same minimized program.
    let program = Arc::new(compile(&minimized.config, &minimized.blocks));
    for (policy, result) in check_all_policies(&check, &program) {
        result.unwrap_or_else(|v| {
            panic!("registry policy {policy} fails the minimized mutant reproducer: {v}")
        });
    }
}

/// Every checked-in minimized fixture replays clean under every registered
/// policy — the regression corpus distilled from past fuzzer catches.
#[test]
fn checked_in_fixtures_replay_clean_under_every_policy() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let fixtures = load_dir(&dir).expect("fixture directory must load");
    assert!(
        !fixtures.is_empty(),
        "tests/fixtures must contain at least one regression fixture"
    );
    for (path, fixture) in fixtures {
        for (policy, result) in fixture.replay_all() {
            if let Err(violation) = result {
                panic!(
                    "fixture {} ({}) violated under policy {policy}: {violation}",
                    path.display(),
                    fixture.description
                );
            }
        }
    }
}

/// The exact duplicate-stale-mapping scenario the fuzzer caught in the
/// oracle scheme (a recycled register named by both a stale and a live
/// speculative mapping) stays fixed, pinned by its original case seed.
#[test]
fn oracle_duplicate_stale_mapping_regression() {
    let hazard = HazardConfig::from_case_seed(42);
    let program = Arc::new(compile(&hazard, &plan_blocks(&hazard)));
    let check = CheckConfig {
        max_cycles: TEST_MAX_CYCLES,
        ..CheckConfig::new(ReleasePolicy::Oracle)
    };
    check_program(&check, &program)
        .unwrap_or_else(|v| panic!("oracle regression (case seed 42) reappeared: {v}"));
}
