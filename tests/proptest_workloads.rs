//! Property-based end-to-end tests: randomly parameterised synthetic
//! workloads must (a) build into valid, terminating programs and (b) produce
//! exactly the architectural emulator's results when run through the
//! out-of-order pipeline under every release policy.

use earlyreg::conformance::test_support;
use earlyreg::core::ReleasePolicy;
use earlyreg::isa::Emulator;
use earlyreg::sim::{verify_against_emulator, MachineConfig, RunLimits, Simulator};
use earlyreg::workloads::{generic_workload, GenericWorkloadConfig};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = GenericWorkloadConfig> {
    (
        50u64..400,
        2usize..20,
        0usize..28,
        0usize..6,
        0.0f64..1.0,
        0usize..8,
        0usize..4,
        0usize..3,
        any::<u64>(),
    )
        .prop_map(
            |(iterations, int_ws, fp_ws, branches, entropy, loads, stores, divides, seed)| {
                GenericWorkloadConfig {
                    iterations,
                    int_working_set: int_ws,
                    fp_working_set: fp_ws,
                    branches_per_iteration: branches,
                    branch_entropy: entropy,
                    loads_per_iteration: loads,
                    stores_per_iteration: stores,
                    fp_divides_per_iteration: divides,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(test_support::cases(12))]

    #[test]
    fn random_workloads_build_and_terminate(config in config_strategy()) {
        let program = generic_workload(config);
        program.validate().expect("generated programs are valid");
        let mut emu = Emulator::new(&program);
        let result = emu.run(3_000_000);
        prop_assert!(result.halted, "generated program did not halt");
        prop_assert!(result.instructions > 100);
    }

    #[test]
    fn random_workloads_match_the_golden_model_under_every_policy(
        config in config_strategy(),
        policy_pick in 0usize..64,
        registers in prop::sample::select(vec![36usize, 44, 56, 80]),
    ) {
        // The free-list safety oracle of the release layer, run across every
        // policy in the registry (oracle and counter included): no scheme may
        // ever free a physical register the ISA emulator still reads later.
        // A violating release either trips the simulator's commit-time
        // discarded-value check (`oracle_violations`), diverges the final
        // architectural state from the golden model, or panics inside the
        // free list (double release) — all of which fail this test.
        let mut config = config;
        config.iterations = config.iterations.min(150);
        let program = generic_workload(config);
        let policies: Vec<ReleasePolicy> = earlyreg::core::registry::registered().collect();
        let policy = policies[policy_pick % policies.len()];
        let machine = MachineConfig::icpp02(policy, registers, registers);
        let mut sim = Simulator::new(machine, program.clone());
        let stats = sim.run(RunLimits {
            max_instructions: 20_000,
            max_cycles: 3_000_000,
        });
        prop_assert!(stats.committed > 100);
        prop_assert_eq!(stats.oracle_violations, 0);
        let outcome = verify_against_emulator(&sim, &program);
        prop_assert!(outcome.is_match(), "divergence under {:?}/{}: {:?}", policy, registers, outcome);
    }

    #[test]
    fn random_workloads_are_deterministic(config in config_strategy()) {
        let mut config = config;
        config.iterations = config.iterations.min(100);
        let a = generic_workload(config);
        let b = generic_workload(config);
        prop_assert_eq!(a.instrs.len(), b.instrs.len());
        prop_assert_eq!(&a.data, &b.data);
        let mut ea = Emulator::new(&a);
        let mut eb = Emulator::new(&b);
        ea.run(1_000_000);
        eb.run(1_000_000);
        prop_assert_eq!(ea.state.fingerprint(), eb.state.fingerprint());
    }
}
