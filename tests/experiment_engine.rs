//! Integration suite of the declarative experiment engine: every registered
//! experiment runs at smoke scale through the same path the `earlyreg-exp`
//! CLI uses, the JSON report schema round-trips through serde, and the
//! on-disk point cache returns bit-identical statistics.

use earlyreg::experiments::engine::{self, PlanContext};
use earlyreg::experiments::{
    fig03, fig09, fig10, sec33, sec44, table4, ExperimentOptions, Format, PointCache, Scenario,
};
use earlyreg::sim::{MachineConfig, RunLimits, SimStats, Simulator};
use earlyreg::workloads::{workload_by_name, Scale};
use earlyreg_core::ReleasePolicy;
use std::path::PathBuf;

fn smoke_options() -> ExperimentOptions {
    ExperimentOptions {
        scale: Scale::Smoke,
        threads: 4,
        max_instructions: 20_000,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("earlyreg-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every registered experiment runs through the engine (the CLI's `run all
/// --format json` path), writes a parsable JSON report, and the declared
/// result schemas round-trip through serde.
#[test]
fn run_all_writes_json_reports_that_round_trip() {
    let out = temp_dir("out");
    let ctx = PlanContext::new(smoke_options(), Scenario::table2());
    let outcome = engine::run_to_files(&["all".to_string()], &ctx, None, Format::Json, Some(&out))
        .expect("engine run succeeds");

    // One report per registered experiment, every point simulated once.
    assert_eq!(outcome.reports.len(), engine::registry().len());
    assert!(
        outcome.summary.planned > outcome.summary.unique,
        "overlapping experiments dedup"
    );
    assert_eq!(outcome.summary.cache_hits, 0);
    assert_eq!(outcome.summary.simulated, outcome.summary.unique);

    for report in &outcome.reports {
        let path = out.join(format!("{}.json", report.experiment));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing report {}: {e}", path.display()));
        let value = serde::json::parse(&text)
            .unwrap_or_else(|e| panic!("{}: invalid JSON: {e}", path.display()));
        assert_eq!(
            value.get("experiment").and_then(|v| v.as_str()),
            Some(report.experiment)
        );
        assert_eq!(
            value.get("title").and_then(|v| v.as_str()),
            Some(report.title)
        );
        let data = value.get("data").expect("report has a data payload");

        // The result structs with a deserializable schema must round-trip
        // through serde: parse the emitted JSON back into the typed result
        // and re-serialize it to the identical value.
        let data_text = serde::json::write_compact(data);
        macro_rules! round_trip {
            ($ty:ty) => {{
                let parsed: $ty = serde::json::from_str(&data_text)
                    .unwrap_or_else(|e| panic!("{}: schema mismatch: {e}", report.experiment));
                assert_eq!(
                    serde::Serialize::to_value(&parsed),
                    *data,
                    "{}: round-trip changed the value",
                    report.experiment
                );
            }};
        }
        match report.experiment {
            "fig03" => round_trip!(fig03::Fig03Result),
            "sec33" => round_trip!(sec33::Sec33Result),
            "fig09" => round_trip!(fig09::Fig09Result),
            "sec44" => round_trip!(sec44::Sec44Result),
            "fig10" => round_trip!(fig10::Fig10Result),
            "table4" => round_trip!(table4::Table4Result),
            // fig11/ablation embed raw `RunResult`s (with `&'static str`
            // workload names) and table1/table3 are plain tables: those
            // schemas are serialize-only.  Still require non-trivial data.
            other => assert!(
                data.get("rows")
                    .or_else(|| data.get("points"))
                    .or_else(|| data.get("raw"))
                    .is_some(),
                "{other}: data payload has no recognisable collection"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&out);
}

/// A warm engine run over the same cache answers every point from disk and
/// produces identical reports.
#[test]
fn warm_cache_run_hits_every_point_and_reproduces_reports() {
    let cache_dir = temp_dir("cache");
    let cache = PointCache::new(&cache_dir);
    let ctx = PlanContext::new(smoke_options(), Scenario::table2());
    let ids = vec!["fig10".to_string(), "sec33".to_string()];

    let cold = engine::run_to_files(&ids, &ctx, Some(&cache), Format::Text, None)
        .expect("cold run succeeds");
    assert_eq!(cold.summary.cache_hits, 0);
    assert!(cold.summary.simulated > 0);

    let warm = engine::run_to_files(&ids, &ctx, Some(&cache), Format::Text, None)
        .expect("warm run succeeds");
    assert_eq!(warm.summary.unique, cold.summary.unique);
    assert_eq!(warm.summary.cache_hits, warm.summary.unique, "fully warm");
    assert_eq!(warm.summary.simulated, 0);
    for (a, b) in cold.reports.iter().zip(&warm.reports) {
        assert_eq!(a.text, b.text, "{}: warm text differs", a.experiment);
        assert_eq!(a.data, b.data, "{}: warm data differs", a.experiment);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// `stats_equivalence` extended through the cache layer: storing and
/// re-loading the golden point returns bit-identical `SimStats`, and a
/// cache-backed engine sweep returns the same statistics as a direct
/// simulation of the same point.
#[test]
fn cache_hit_is_bit_identical_to_cold_run() {
    // The golden point of tests/stats_equivalence.rs.
    let workload = workload_by_name("swim", Scale::Smoke).expect("swim exists");
    let config = MachineConfig::icpp02(ReleasePolicy::Extended, 48, 48);
    let mut sim = Simulator::new(config, workload.program.clone());
    let direct: SimStats = sim.run(RunLimits::instructions(20_000));

    // Resolve the same point twice through the cache-backed engine.
    let cache_dir = temp_dir("golden");
    let cache = PointCache::new(&cache_dir);
    let ctx = PlanContext::new(smoke_options(), Scenario::table2());
    let swim = ctx.workload("swim").expect("swim in suite").clone();
    let plan = vec![ctx.point(&swim, ReleasePolicy::Extended, 48, 48)];

    let from_sim = {
        let outcome = engine::resolve_plan(&ctx, &plan, Some(&cache));
        outcome.stats(&plan[0]).expect("point resolved").clone()
    };
    let from_cache = {
        let outcome = engine::resolve_plan(&ctx, &plan, Some(&cache));
        outcome.stats(&plan[0]).expect("point resolved").clone()
    };

    assert_eq!(direct, from_sim, "engine simulation matches a direct run");
    assert_eq!(from_sim, from_cache, "cache hit is bit-identical");
    // And the entry really came from disk.
    assert_eq!(cache.load(&plan[0].key), Some(direct));
    let _ = std::fs::remove_dir_all(&cache_dir);
}
