//! Property tests for the assembly front-end.
//!
//! Two contracts, both promised by `crates/isa/src/assembler.rs`:
//!
//! 1. **Round-trip fixed point** — `disassemble` is the assembler's dual:
//!    assembling a program's listing reproduces the exact instruction
//!    stream, and relisting the result reproduces the exact listing.  This
//!    is checked on random synthetic programs and on every registered
//!    assembled kernel.
//! 2. **Total on malformed input** — `assemble` never panics, no matter how
//!    broken the source; every rejection is an `AsmError` whose line number
//!    points inside the source (line 0 reserved for whole-program errors
//!    such as a missing `halt`).

use earlyreg::conformance::test_support;
use earlyreg::isa::assemble;
use earlyreg::workloads::{generic_workload, registry, GenericWorkloadConfig, WorkloadKind};
use proptest::prelude::*;

/// Assemble a listing and require the exact (instructions, relisting) fixed
/// point.
fn assert_round_trip(name: &str, program: &earlyreg::isa::Program) {
    let listing = program.disassemble();
    // Reassemble under the original program name: the listing header quotes
    // it, so the fixed point is only meaningful name-for-name.
    let reassembled = assemble(&program.name, &listing)
        .unwrap_or_else(|e| panic!("{name}: listing does not reassemble: {e}"))
        .program;
    assert_eq!(
        program.instrs, reassembled.instrs,
        "{name}: instruction stream changed across disassemble → assemble"
    );
    assert_eq!(
        listing,
        reassembled.disassemble(),
        "{name}: listing is not a fixed point"
    );
}

#[test]
fn every_registered_asm_kernel_round_trips_through_its_listing() {
    let kernels: Vec<_> = registry::descriptors()
        .iter()
        .filter(|d| d.kind() == WorkloadKind::Asm)
        .collect();
    assert!(kernels.len() >= 5, "expected the five shipped kernels");
    for descriptor in kernels {
        assert_round_trip(descriptor.id, &descriptor.build_program(2));
    }
}

fn config_strategy() -> impl Strategy<Value = GenericWorkloadConfig> {
    (
        20u64..100,
        2usize..16,
        0usize..20,
        0usize..5,
        0.0f64..1.0,
        0usize..6,
        0usize..3,
        0usize..2,
        any::<u64>(),
    )
        .prop_map(
            |(iterations, int_ws, fp_ws, branches, entropy, loads, stores, divides, seed)| {
                GenericWorkloadConfig {
                    iterations,
                    int_working_set: int_ws,
                    fp_working_set: fp_ws,
                    branches_per_iteration: branches,
                    branch_entropy: entropy,
                    loads_per_iteration: loads,
                    stores_per_iteration: stores,
                    fp_divides_per_iteration: divides,
                    seed,
                }
            },
        )
}

/// One random source line: either plausible assembler tokens glued together
/// in the wrong order, or printable noise.  Both exercise every parser
/// stage — mnemonic lookup, operand parsing, directive handling, symbol
/// resolution — without ever being allowed to panic.
fn line_strategy() -> impl Strategy<Value = String> {
    let token = prop::sample::select(vec![
        "li",
        "ld",
        "st",
        "add",
        "addi",
        "mul",
        "fadd",
        "fmul",
        "fld",
        "fst",
        "fli",
        "beq",
        "bgt",
        "blt",
        "jmp",
        "halt",
        "nop",
        "r0",
        "r1",
        "r31",
        "r99",
        "f0",
        "f31",
        "f99",
        "#7",
        "#-3",
        "#",
        "0.5",
        "-1.5e9",
        "loop",
        "loop:",
        "loop:}",
        "x:",
        "x+2",
        "x-",
        ".word",
        ".fword",
        ".zero",
        ".arg",
        ".memory",
        ".bogus",
        "=",
        ",",
        ",,",
        ";",
        "comment",
        "9999999999999999999",
    ]);
    prop_oneof![
        prop::collection::vec(token, 0..6).prop_map(|tokens| tokens.join(" ")),
        prop::collection::vec(32u8..127u8, 0..24)
            .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII")),
    ]
}

proptest! {
    #![proptest_config(test_support::cases(64))]

    /// Random synthetic programs — every generator knob in play — must
    /// survive the listing round trip bit-identically.
    #[test]
    fn random_synthetic_programs_round_trip_through_their_listing(
        config in config_strategy(),
    ) {
        assert_round_trip("synthetic", &generic_workload(config));
    }

    /// Arbitrary token soup: `assemble` must return (never panic), and any
    /// error must carry a line number inside the source.
    #[test]
    fn malformed_sources_error_with_in_bounds_line_numbers(
        lines in prop::collection::vec(line_strategy(), 0..12),
    ) {
        let source = lines.join("\n");
        if let Err(error) = assemble("fuzz", &source) {
            prop_assert!(
                error.line <= source.lines().count(),
                "error line {} out of bounds for {} source lines: {error}",
                error.line,
                source.lines().count()
            );
            prop_assert!(!error.message.is_empty());
        }
    }

    /// Mutating a known-good kernel listing (dropping a line, truncating
    /// mid-line) must also never panic, and rejections stay line-numbered.
    #[test]
    fn mutated_kernel_listings_never_panic(
        kernel in 0usize..5,
        drop_line in any::<usize>(),
        truncate_at in any::<usize>(),
    ) {
        let descriptors: Vec<_> = registry::descriptors()
            .iter()
            .filter(|d| d.kind() == WorkloadKind::Asm)
            .collect();
        let descriptor = descriptors[kernel % descriptors.len()];
        let listing = descriptor.build_program(1).disassemble();
        let lines: Vec<&str> = listing.lines().collect();

        let dropped: String = {
            let skip = drop_line % lines.len();
            lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let truncated = &listing[..truncate_at % (listing.len() + 1)];

        for source in [dropped.as_str(), truncated] {
            if let Err(error) = assemble(descriptor.id, source) {
                prop_assert!(error.line <= source.lines().count());
            }
        }
    }
}
