//! Precise-exception recovery across the suite (the paper's Section 4.3):
//! with exceptions injected periodically at the commit point, every policy
//! must still match the architectural emulator — the only permitted
//! difference being provably dead register values.

use earlyreg::core::ReleasePolicy;
use earlyreg::sim::{verify_against_emulator, MachineConfig, RunLimits, Simulator};
use earlyreg::workloads::{suite, Scale};

fn run_with_exceptions(name: &str, policy: ReleasePolicy, interval: u64) {
    let workloads = suite(Scale::Smoke);
    let workload = workloads
        .iter()
        .find(|w| w.name() == name)
        .expect("workload exists");
    let mut config = MachineConfig::icpp02(policy, 48, 48);
    config.exceptions.interval = Some(interval);
    config.exceptions.handler_cycles = 25;
    let mut sim = Simulator::new(config, workload.program.clone());
    let stats = sim.run(RunLimits {
        max_instructions: 30_000,
        max_cycles: 4_000_000,
    });
    assert!(
        stats.exceptions > 0,
        "{name}/{policy:?}: no exceptions were injected (interval {interval})"
    );
    assert_eq!(
        stats.oracle_violations, 0,
        "{name}/{policy:?}: dead value read after recovery"
    );
    let outcome = verify_against_emulator(&sim, &workload.program);
    assert!(
        outcome.is_match(),
        "{name} under {policy:?} diverged after {} exceptions: {outcome:?}",
        stats.exceptions
    );
}

#[test]
fn conventional_survives_exception_storms() {
    for name in ["compress", "swim"] {
        run_with_exceptions(name, ReleasePolicy::Conventional, 211);
    }
}

#[test]
fn basic_survives_exception_storms() {
    for name in ["gcc", "tomcatv", "li"] {
        run_with_exceptions(name, ReleasePolicy::Basic, 173);
    }
}

#[test]
fn extended_survives_exception_storms() {
    for name in ["go", "perl", "mgrid", "hydro2d", "applu"] {
        run_with_exceptions(name, ReleasePolicy::Extended, 149);
    }
}

#[test]
fn extended_survives_very_frequent_exceptions_on_tiny_files() {
    // Maximum stress: exceptions every ~60 committed instructions on a
    // 36-register file, which continuously exercises the stale-mapping logic
    // of Section 4.3.
    let workloads = suite(Scale::Smoke);
    let workload = workloads.iter().find(|w| w.name() == "tomcatv").unwrap();
    let mut config = MachineConfig::icpp02(ReleasePolicy::Extended, 36, 36);
    config.exceptions.interval = Some(61);
    config.exceptions.handler_cycles = 10;
    let mut sim = Simulator::new(config, workload.program.clone());
    let stats = sim.run(RunLimits {
        max_instructions: 20_000,
        max_cycles: 4_000_000,
    });
    assert!(
        stats.exceptions >= 30,
        "expected a storm of exceptions, got {}",
        stats.exceptions
    );
    let outcome = verify_against_emulator(&sim, &workload.program);
    assert!(outcome.is_match(), "{outcome:?}");
}

#[test]
fn exceptions_cost_cycles_but_not_correct_results() {
    let workloads = suite(Scale::Smoke);
    let workload = workloads.iter().find(|w| w.name() == "perl").unwrap();
    let clean_config = MachineConfig::icpp02(ReleasePolicy::Extended, 64, 64);
    let mut clean = Simulator::new(clean_config, workload.program.clone());
    let clean_stats = clean.run(RunLimits {
        max_instructions: 20_000,
        max_cycles: 4_000_000,
    });

    let mut stormy_config = MachineConfig::icpp02(ReleasePolicy::Extended, 64, 64);
    stormy_config.exceptions.interval = Some(97);
    let mut stormy = Simulator::new(stormy_config, workload.program.clone());
    let stormy_stats = stormy.run(RunLimits {
        max_instructions: 20_000,
        max_cycles: 4_000_000,
    });

    assert_eq!(clean_stats.committed, stormy_stats.committed);
    assert!(
        stormy_stats.cycles > clean_stats.cycles,
        "exceptions must cost cycles"
    );
}
