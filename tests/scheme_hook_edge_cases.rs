//! Hook-protocol edge cases, exercised for **every** registered release
//! policy (discovered through the registry — a newly registered scheme is
//! pulled into these tests automatically, never by editing a policy list):
//!
//! * a precise exception raised while a branch — and therefore a
//!   scheme-owned checkpoint — is still in flight (`on_exception` must reset
//!   checkpoint state that `on_branch_mispredict`/`on_branch_correct` will
//!   never be called for);
//! * a misprediction squash that empties the whole window behind the branch;
//! * back-to-back mispredicts (nested branches, youngest resolved first).
//!
//! Policies whose descriptor sets `needs_kill_plan` (the oracle) cannot be
//! driven with raw rename streams — they need a program trace — so they run
//! the same scenarios through the differential conformance harness on
//! deterministic hazard programs instead; both paths end in the same
//! invariant checks.

use earlyreg::conformance::{check_program, compile, CheckConfig, HazardBlock, HazardConfig};
use earlyreg::core::{registry, InstrId, ReleasePolicy, RenameConfig, RenameUnit};
use earlyreg::isa::{ArchReg, BranchCond, Instruction, Opcode};
use std::sync::Arc;

const PHYS: usize = 40;

fn def_int(d: usize) -> Instruction {
    Instruction {
        op: Opcode::ILoadImm,
        dst: Some(ArchReg::int(d)),
        src1: None,
        src2: None,
        imm: 1,
    }
}

fn add_int(d: usize, a: usize, b: usize) -> Instruction {
    Instruction {
        op: Opcode::IAdd,
        dst: Some(ArchReg::int(d)),
        src1: Some(ArchReg::int(a)),
        src2: Some(ArchReg::int(b)),
        imm: 0,
    }
}

fn branch(a: usize) -> Instruction {
    Instruction {
        op: Opcode::Branch(BranchCond::Ne),
        dst: None,
        src1: Some(ArchReg::int(a)),
        src2: None,
        imm: 0,
    }
}

fn unit(policy: ReleasePolicy) -> RenameUnit {
    RenameUnit::new(RenameConfig::icpp02(policy, PHYS, PHYS))
}

fn rename(ru: &mut RenameUnit, instr: &Instruction, cycle: u64) -> InstrId {
    ru.rename(instr, cycle)
        .unwrap_or_else(|e| panic!("rename must not stall in these short scenarios: {e:?}"))
        .id
}

fn assert_ok(ru: &RenameUnit, context: &str) {
    ru.check_invariants()
        .unwrap_or_else(|e| panic!("{context}: invariant violated: {e}"));
    ru.check_checkpoint_coherence()
        .unwrap_or_else(|e| panic!("{context}: checkpoint incoherent: {e}"));
}

/// Direct-drive policies: everything registered except kill-plan schemes.
fn stream_policies() -> impl Iterator<Item = ReleasePolicy> {
    registry::descriptors()
        .iter()
        .filter(|d| !d.needs_kill_plan)
        .map(|d| d.policy)
}

/// Kill-plan policies run the harness on a deterministic hazard scenario.
fn harness_policies() -> impl Iterator<Item = ReleasePolicy> {
    registry::descriptors()
        .iter()
        .filter(|d| d.needs_kill_plan)
        .map(|d| d.policy)
}

fn run_harness_scenario(policy: ReleasePolicy, blocks: &[HazardBlock], exceptions: Option<u64>) {
    let hazard = HazardConfig {
        seed: 0x5CE2_14A1,
        iterations: 6,
        blocks: blocks.len() as u32,
        int_ws: 4,
        fp_ws: 2,
    };
    let program = Arc::new(compile(&hazard, blocks));
    let check = CheckConfig {
        exception_interval: exceptions,
        max_cycles: 300_000,
        ..CheckConfig::new(policy)
    };
    if let Err(v) = check_program(&check, &program) {
        panic!("policy {policy} failed the harness scenario: {v}");
    }
}

#[test]
fn exception_with_branch_and_scheme_checkpoint_in_flight() {
    for policy in stream_policies() {
        let mut ru = unit(policy);
        let context = format!("policy {policy}, exception in branch shadow");

        // Window: def r1; branch on r1 (checkpoint!); shadow redefines r1
        // twice (anti-dependence the scheme may track speculatively).
        let d1 = rename(&mut ru, &def_int(1), 1);
        let _b = rename(&mut ru, &branch(1), 2);
        let _s1 = rename(&mut ru, &add_int(1, 1, 2), 3);
        let _s2 = rename(&mut ru, &add_int(1, 1, 3), 4);
        assert_ok(&ru, &context);

        // Precise exception with the branch unresolved: no on_squash, no
        // on_branch_* will ever arrive for it — the scheme must drop its
        // checkpoint (and every conditional release tied to it) on its own.
        ru.recover_exception(5);
        assert_ok(&ru, &context);
        assert_eq!(
            ru.checkpointed_branches().count(),
            0,
            "{context}: engine checkpoints must be gone after the exception"
        );
        let _ = d1;

        // The machine must keep working: a fresh shadowed redefinition
        // sequence renames, resolves and commits cleanly.
        let d2 = rename(&mut ru, &def_int(1), 6);
        let b2 = rename(&mut ru, &branch(1), 7);
        let s3 = rename(&mut ru, &add_int(1, 1, 2), 8);
        ru.resolve_branch_correct(b2, 9);
        for id in [d2, b2, s3] {
            ru.commit(id, 10);
            assert_ok(&ru, &context);
        }
        assert_eq!(ru.release_queue_marks(), 0, "{context}: marks must drain");
    }
    for policy in harness_policies() {
        run_harness_scenario(
            policy,
            &[
                HazardBlock::BranchShadow(1, 3),
                HazardBlock::AntiDepChain(0, 4),
            ],
            Some(31),
        );
    }
}

#[test]
fn mispredict_squash_empties_the_whole_window() {
    for policy in stream_policies() {
        let mut ru = unit(policy);
        let context = format!("policy {policy}, squash to empty");

        // The branch is the oldest in-flight instruction; everything behind
        // it gets squashed, leaving a window of exactly one entry.
        let b = rename(&mut ru, &branch(1), 1);
        let shadow: Vec<InstrId> = (0..6)
            .map(|k| rename(&mut ru, &add_int(1 + k % 3, 1, 2), 2 + k as u64))
            .collect();
        assert_ok(&ru, &context);

        ru.recover_branch_mispredict(b, 10);
        assert_ok(&ru, &context);
        assert_eq!(
            ru.in_flight_entries().count(),
            1,
            "{context}: only the branch itself survives the squash"
        );
        let _ = shadow;

        ru.commit(b, 11);
        assert_ok(&ru, &context);
        assert_eq!(ru.in_flight_entries().count(), 0);
        assert_eq!(ru.release_queue_marks(), 0, "{context}: marks must drain");
    }
    for policy in harness_policies() {
        run_harness_scenario(
            policy,
            &[
                HazardBlock::BranchShadow(0, 4),
                HazardBlock::RotatingDefs(2),
            ],
            None,
        );
    }
}

#[test]
fn back_to_back_mispredicts_restore_nested_checkpoints() {
    for policy in stream_policies() {
        let mut ru = unit(policy);
        let context = format!("policy {policy}, back-to-back mispredicts");

        // Nested speculation: B1 { redefs, B2 { redefs } }.
        let d = rename(&mut ru, &def_int(1), 1);
        let b1 = rename(&mut ru, &branch(1), 2);
        let s1 = rename(&mut ru, &add_int(1, 1, 2), 3);
        let b2 = rename(&mut ru, &branch(1), 4);
        let _s2 = rename(&mut ru, &add_int(1, 1, 3), 5);
        let _s3 = rename(&mut ru, &add_int(2, 1, 1), 6);
        assert_ok(&ru, &context);
        assert_eq!(ru.checkpointed_branches().count(), 2);

        // Youngest first, then its parent — two rollbacks in consecutive
        // cycles, each restoring an older checkpoint of maps *and* scheme
        // state.
        ru.recover_branch_mispredict(b2, 7);
        assert_ok(&ru, &context);
        assert_eq!(ru.checkpointed_branches().count(), 1);
        ru.recover_branch_mispredict(b1, 8);
        assert_ok(&ru, &context);
        assert_eq!(ru.checkpointed_branches().count(), 0);

        // s1 sits behind b1, so the second rollback squashed it too: only
        // the loop-carried def and the older branch remain to commit.
        let survivors: Vec<InstrId> = ru.in_flight_entries().map(|e| e.id).collect();
        assert_eq!(
            survivors,
            vec![d, b1],
            "{context}: survivors after both rollbacks"
        );
        let _ = s1;
        for id in survivors {
            ru.commit(id, 9);
            assert_ok(&ru, &context);
        }
        assert_eq!(ru.release_queue_marks(), 0, "{context}: marks must drain");
    }
    for policy in harness_policies() {
        run_harness_scenario(
            policy,
            &[HazardBlock::BranchStorm(4), HazardBlock::BranchShadow(3, 2)],
            None,
        );
    }
}
