//! Property test for the ring-buffer reorder structure: under random
//! push/commit/squash/clear sequences (with id gaps, wraparound and repeated
//! squashes), the O(1) id-indexed lookups must agree with a naive
//! linear-scan oracle at every step.

use earlyreg::conformance::test_support;
use earlyreg::core::{InstrId, RenamedInstr};
use earlyreg::isa::Instruction;
use earlyreg::sim::{ReorderBuffer, RobEntry};
use proptest::prelude::*;

fn entry(id: u64) -> RobEntry {
    RobEntry {
        id: InstrId(id),
        pc: id as usize,
        instr: Instruction::nop(),
        renamed: RenamedInstr {
            id: InstrId(id),
            src1: None,
            src2: None,
            dst: None,
        },
        prediction: None,
        predicted_taken: false,
        predicted_next: id as usize + 1,
        actual_taken: None,
        actual_next: 0,
        resolved: false,
        result: None,
        mem_addr: None,
        store_data: None,
        dispatched_at: 0,
        trace_idx: earlyreg::isa::NO_TRACE,
    }
}

/// One step of the random workload driven against both implementations.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push `count` new entries, advancing the id counter by `gap` first
    /// (models ids consumed between squash and refill).
    Push { count: u8, gap: u8 },
    /// Commit up to `count` entries from the head.
    Commit { count: u8 },
    /// Squash after the live entry at relative position `pos` (mod len).
    Squash { pos: u8 },
    /// Exception-style clear.
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..8u8, 0..4u8).prop_map(|(count, gap)| Op::Push { count, gap }),
        (1..8u8, 0..4u8).prop_map(|(count, gap)| Op::Push { count, gap }),
        (1..6u8).prop_map(|count| Op::Commit { count }),
        (1..6u8).prop_map(|count| Op::Commit { count }),
        any::<u8>().prop_map(|pos| Op::Squash { pos }),
        (0..1u8).prop_map(|_| Op::Clear),
    ]
}

proptest! {
    #![proptest_config(test_support::cases(64))]

    #[test]
    fn ring_lookups_agree_with_linear_scan_oracle(
        ops in prop::collection::vec(op_strategy(), 1..120),
        capacity in 2..24usize,
    ) {
        let mut rob = ReorderBuffer::new(capacity);
        // The oracle: a plain program-ordered list, searched linearly.
        let mut oracle: Vec<u64> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Push { count, gap } => {
                    next_id += gap as u64;
                    for _ in 0..count {
                        if rob.is_full() {
                            break;
                        }
                        rob.push(entry(next_id));
                        oracle.push(next_id);
                        next_id += 1;
                    }
                }
                Op::Commit { count } => {
                    for _ in 0..count {
                        let Some(&head_id) = oracle.first() else { break };
                        prop_assert_eq!(rob.head().unwrap().id, InstrId(head_id));
                        let popped = rob.pop_head(InstrId(head_id));
                        prop_assert_eq!(popped.id, InstrId(head_id));
                        oracle.remove(0);
                    }
                }
                Op::Squash { pos } => {
                    if !oracle.is_empty() {
                        let pivot = oracle[pos as usize % oracle.len()];
                        let removed = rob.squash_after(InstrId(pivot));
                        let keep = oracle.iter().position(|&i| i > pivot).unwrap_or(oracle.len());
                        prop_assert_eq!(removed, oracle.len() - keep);
                        oracle.truncate(keep);
                    }
                }
                Op::Clear => {
                    prop_assert_eq!(rob.clear(), oracle.len());
                    oracle.clear();
                }
            }

            // Invariants after every step: occupancy, order, and id lookups
            // agree with the oracle (both hits and misses, probing the whole
            // id space touched so far plus a few unallocated ids).
            prop_assert_eq!(rob.len(), oracle.len());
            prop_assert_eq!(rob.is_empty(), oracle.is_empty());
            let ring_ids: Vec<u64> = rob.iter().map(|e| e.id.0).collect();
            prop_assert_eq!(&ring_ids, &oracle);
            for probe in 0..next_id + 3 {
                let fast = rob.get(InstrId(probe)).map(|e| e.id.0);
                let slow = oracle.iter().find(|&&i| i == probe).copied();
                prop_assert_eq!(fast, slow, "id {} lookup diverged", probe);
                if let Some(slot) = rob.slot_of(InstrId(probe)) {
                    prop_assert_eq!(rob.at_slot(slot).map(|e| e.id.0), Some(probe));
                }
            }
        }
    }
}
