//! The ideal-release upper bound, end to end through the experiment engine:
//! a `Scenario` that adds the `oracle` and `counter` schemes to the policy
//! set drives the Figure 10/11 sweeps with **zero engine edits** — the
//! policies flow from the registry through the scenario into the plans — and
//! the oracle IPC curve must upper-bound the extended mechanism everywhere
//! it is sampled.

use earlyreg::experiments::engine::{self, PlanContext};
use earlyreg::experiments::{fig10, fig11, ExperimentOptions, Scenario};
use earlyreg::workloads::Scale;
use earlyreg_core::ReleasePolicy;
use earlyreg_workloads::WorkloadClass;

/// Scenario text as a user would write it — the policy names go through the
/// registry parser.
const SCENARIO: &str = "\
    sweep_sizes = 40, 48\n\
    policies = conv, basic, extended, oracle, counter\n";

#[test]
fn oracle_curve_upper_bounds_extended_on_the_figure_sweeps() {
    let scenario = Scenario::parse("all-schemes", SCENARIO).expect("scenario parses");
    let policies = scenario.policies();
    assert_eq!(policies.len(), 5);
    let ctx = PlanContext::new(
        ExperimentOptions {
            scale: Scale::Smoke,
            threads: 4,
            max_instructions: 20_000,
        },
        scenario,
    );

    // One shared sweep resolves both figures: the Figure 10 points (48
    // registers) are a subset of the Figure 11 plan, so the dedup layer
    // answers them from the same results.
    let plan11 = fig11::plan(&ctx);
    let results = engine::simulate(&ctx, &plan11);

    // Figure 10 (48 registers): per-benchmark oracle >= extended, and the
    // dynamic columns carry every scheme.
    let plan10 = fig10::plan(&ctx);
    let fig10_result = fig10::summarise(&results.collect(&plan10), &policies);
    assert_eq!(
        fig10_result.policies,
        ["conv", "basic", "extended", "oracle", "counter"]
    );
    assert_eq!(fig10_result.rows.len(), 10);
    for row in &fig10_result.rows {
        let conv = fig10_result.ipc(&row.workload, "conv").unwrap();
        let extended = fig10_result.ipc(&row.workload, "extended").unwrap();
        let oracle = fig10_result.ipc(&row.workload, "oracle").unwrap();
        let counter = fig10_result.ipc(&row.workload, "counter").unwrap();
        assert!(
            oracle >= extended * 0.999,
            "{}: oracle IPC {oracle:.4} below extended {extended:.4}",
            row.workload
        );
        assert!(
            counter >= conv * 0.98,
            "{}: counter IPC {counter:.4} below conventional {conv:.4}",
            row.workload
        );
    }
    // The rendered table carries the ideal column.
    assert!(fig10::render(&fig10_result).contains("oracle"));

    // Figure 11 (40 and 48 registers): the per-group harmonic-mean curves.
    let sizes = [40usize, 48];
    let points = fig11::summarise(&results.collect(&plan11), &sizes, &policies);
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        for &size in &sizes {
            let at = |policy: ReleasePolicy| {
                points
                    .iter()
                    .find(|p| p.class == class && p.policy == policy && p.size == size)
                    .map(|p| p.hmean_ipc)
                    .unwrap_or_else(|| panic!("missing {class:?}/{policy}/{size} point"))
            };
            let extended = at(ReleasePolicy::Extended);
            let oracle = at(ReleasePolicy::Oracle);
            assert!(
                oracle >= extended * 0.999,
                "{class:?} @ {size}: oracle hmean {oracle:.4} below extended {extended:.4}"
            );
        }
    }
}
