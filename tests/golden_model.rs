//! Workspace-level golden-model tests: every workload in the suite, under
//! every release policy, must commit exactly the architectural emulator's
//! instruction stream and produce the same final state (memory plus all
//! non-dead registers), and must never read a value discarded by early
//! release.

use earlyreg::core::ReleasePolicy;
use earlyreg::sim::{verify_against_emulator, MachineConfig, RunLimits, Simulator};
use earlyreg::workloads::{suite, Scale};

fn check_workload(name: &str, policy: ReleasePolicy, phys: usize) {
    let workloads = suite(Scale::Smoke);
    let workload = workloads
        .iter()
        .find(|w| w.name() == name)
        .expect("workload exists");
    let config = MachineConfig::icpp02(policy, phys, phys);
    let mut sim = Simulator::new(config, workload.program.clone());
    let stats = sim.run(RunLimits {
        max_instructions: 40_000,
        max_cycles: 4_000_000,
    });
    assert!(
        stats.committed > 1_000,
        "{name}/{policy:?}: too few instructions committed"
    );
    assert_eq!(
        stats.oracle_violations, 0,
        "{name}/{policy:?}: dead value read"
    );
    let outcome = verify_against_emulator(&sim, &workload.program);
    assert!(
        outcome.is_match(),
        "{name} under {policy:?} with {phys} registers diverged: {outcome:?}"
    );
}

macro_rules! golden_tests {
    ($($test_name:ident => $workload:literal),+ $(,)?) => {
        $(
            mod $test_name {
                use super::*;

                #[test]
                fn conventional_tight() {
                    check_workload($workload, ReleasePolicy::Conventional, 48);
                }

                #[test]
                fn basic_tight() {
                    check_workload($workload, ReleasePolicy::Basic, 48);
                }

                #[test]
                fn extended_tight() {
                    check_workload($workload, ReleasePolicy::Extended, 48);
                }

                #[test]
                fn extended_very_tight() {
                    check_workload($workload, ReleasePolicy::Extended, 36);
                }

                #[test]
                fn extended_loose() {
                    check_workload($workload, ReleasePolicy::Extended, 160);
                }
            }
        )+
    };
}

golden_tests!(
    compress => "compress",
    gcc => "gcc",
    go => "go",
    li => "li",
    perl => "perl",
    mgrid => "mgrid",
    tomcatv => "tomcatv",
    applu => "applu",
    swim => "swim",
    hydro2d => "hydro2d",
);
